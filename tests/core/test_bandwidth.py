"""Tests for bandwidth-aware placement."""

import pytest

from repro.core import (
    BandwidthApproG,
    evaluate_solution,
    make_algorithm,
    verify_solution,
)
from repro.core.bandwidth import BandwidthAwareState
from repro.experiments.runner import make_instance
from repro.network.routing import extract_path
from repro.sim import ExecutionConfig, execute_placement
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults


@pytest.fixture(scope="module")
def instance():
    return make_instance(TwoTierConfig(), PaperDefaults(), 0, 0)


class TestBandwidthAwareState:
    def test_serve_charges_path_links(self, instance):
        state = BandwidthAwareState(instance, link_budget_gb=50.0)
        query = instance.queries[0]
        dataset = instance.dataset(query.demanded[0])
        node = next(
            v
            for v in instance.placement_nodes
            if v != query.home_node and state.can_serve(query, dataset, v)
        )
        assignment = state.serve(query, dataset, node)
        path = extract_path(instance.paths, node, query.home_node)
        flow = query.alpha_for(dataset.dataset_id) * dataset.volume_gb
        for u, v in zip(path, path[1:]):
            assert state.links.available(u, v) == pytest.approx(50.0 - flow)
        state.release(assignment)
        for u, v in zip(path, path[1:]):
            assert state.links.available(u, v) == pytest.approx(50.0)

    def test_home_service_charges_nothing(self, instance):
        state = BandwidthAwareState(instance, link_budget_gb=50.0)
        query = next(
            q
            for q in instance.queries
            for d in q.demanded
            if state.can_serve(q, instance.dataset(d), q.home_node)
        )
        d_id = next(
            d
            for d in query.demanded
            if state.can_serve(query, instance.dataset(d), query.home_node)
        )
        state.serve(query, instance.dataset(d_id), query.home_node)
        assert all(u <= 1e-12 for u in state.links.utilization().values())

    def test_transaction_rolls_back_links(self, instance):
        state = BandwidthAwareState(instance, link_budget_gb=50.0)
        query = instance.queries[0]
        dataset = instance.dataset(query.demanded[0])
        node = next(
            v
            for v in instance.placement_nodes
            if v != query.home_node and state.can_serve(query, dataset, v)
        )
        with state.transaction():
            state.serve(query, dataset, node)
        assert all(u <= 1e-12 for u in state.links.utilization().values())

    def test_can_serve_respects_budget(self, instance):
        state = BandwidthAwareState(instance, link_budget_gb=1e-6)
        query = instance.queries[0]
        dataset = instance.dataset(query.demanded[0])
        for v in instance.placement_nodes:
            if v == query.home_node:
                continue
            assert not state.can_serve(query, dataset, v)


class TestBandwidthApproG:
    def test_solves_and_verifies(self, instance):
        solution = BandwidthApproG(link_budget_gb=20.0).solve(instance)
        verify_solution(instance, solution)
        assert solution.extras["max_link_utilization"] <= 1.0 + 1e-9

    def test_registered(self):
        algo = make_algorithm("appro-bw-g")
        assert algo.name == "appro-bw-g"

    def test_generous_budget_matches_plain(self, instance):
        plain = evaluate_solution(
            instance, make_algorithm("appro-g").solve(instance)
        ).admitted_volume_gb
        generous = evaluate_solution(
            instance, BandwidthApproG(link_budget_gb=1e9).solve(instance)
        ).admitted_volume_gb
        assert generous == pytest.approx(plain)

    @pytest.mark.parametrize("budget", [2.0, 5.0, 20.0])
    def test_link_budgets_respected(self, instance, budget):
        """The defining invariant: recomputed per-link flow ≤ budget.

        (Admitted volume is *not* monotone in the budget — sequential
        admission can reject early queries and thereby fit later, larger
        ones — so the bound is the property, not monotonicity.)
        """
        solution = BandwidthApproG(link_budget_gb=budget).solve(instance)
        load: dict[tuple[int, int], float] = {}
        for (q_id, d_id), a in solution.assignments.items():
            query = instance.query(q_id)
            if a.node == query.home_node:
                continue
            flow = query.alpha_for(d_id) * instance.dataset(d_id).volume_gb
            path = extract_path(instance.paths, a.node, query.home_node)
            for u, v in zip(path, path[1:]):
                key = (min(u, v), max(u, v))
                load[key] = load.get(key, 0.0) + flow
        assert all(total <= budget * (1 + 1e-9) for total in load.values())

    def test_tight_budget_reduces_contention_violations(self):
        """The extension's point: fewer deadline misses under contention."""
        tight_viol = plain_viol = 0
        for seed in range(5):
            inst = make_instance(TwoTierConfig(), PaperDefaults(), seed, 0)
            plain = make_algorithm("appro-g").solve(inst)
            tight = BandwidthApproG(link_budget_gb=5.0).solve(inst)
            cfg = ExecutionConfig(contention=True)
            plain_viol += execute_placement(inst, plain, cfg).deadline_violations
            tight_viol += execute_placement(inst, tight, cfg).deadline_violations
        assert tight_viol <= plain_viol

    def test_deterministic(self, instance):
        s1 = BandwidthApproG(link_budget_gb=10.0).solve(instance)
        s2 = BandwidthApproG(link_budget_gb=10.0).solve(instance)
        assert s1.admitted == s2.admitted
