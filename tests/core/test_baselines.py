"""Tests for the Greedy, Graph-partitioning and Popularity baselines."""

import pytest

from repro.cluster.state import ClusterState
from repro.core import (
    GraphG,
    GraphS,
    GreedyG,
    GreedyS,
    PopularityG,
    PopularityS,
    evaluate_solution,
    verify_solution,
)
from repro.core.base import SolutionBuilder, require_special_case
from repro.core.greedy import _greedy_place_pair, _ship_greedy_place_pair
from repro.core.graph_partition import partition_placement_nodes
from repro.core.popularity import (
    ReplicaPopularityCounter,
    _popularity_place_pair,
    node_popularity,
)
from repro.core.types import Assignment
from repro.util.validation import ValidationError


@pytest.mark.parametrize("algo_cls", [GreedyG, GraphG, PopularityG])
class TestGeneralBaselines:
    def test_solves_and_verifies(self, paper_instance, algo_cls):
        solution = algo_cls().solve(paper_instance)
        verify_solution(paper_instance, solution)

    def test_deterministic(self, paper_instance, algo_cls):
        s1 = algo_cls().solve(paper_instance)
        s2 = algo_cls().solve(paper_instance)
        assert s1.admitted == s2.admitted

    def test_deadlines_met(self, paper_instance, algo_cls):
        solution = algo_cls().solve(paper_instance)
        for a in solution.assignments.values():
            assert a.latency_s <= paper_instance.query(a.query_id).deadline_s

    def test_tiny_instance_full_admission(self, tiny_instance, algo_cls):
        solution = algo_cls().solve(tiny_instance)
        assert solution.num_admitted == 3


@pytest.mark.parametrize("algo_cls", [GreedyS, GraphS, PopularityS])
class TestSpecialBaselines:
    def test_solves_and_verifies(self, special_instance, algo_cls):
        solution = algo_cls().solve(special_instance)
        verify_solution(special_instance, solution)

    def test_rejects_general_instance(self, paper_instance, algo_cls):
        with pytest.raises(ValidationError, match="special case"):
            algo_cls().solve(paper_instance)


class TestGreedySpecifics:
    def test_burned_replicas_persist_after_rejection(self, paper_instance):
        """The benchmark's defining waste: rejected queries leave replicas."""
        solution = GreedyG().solve(paper_instance)
        if solution.rejected:
            total_replicas = sum(
                len(nodes) for nodes in solution.replicas.values()
            )
            origins = len(paper_instance.datasets)
            served_nodes = {
                (a.dataset_id, a.node) for a in solution.assignments.values()
            }
            # Strictly more copies than origins + served locations would need
            # is the signature of burned slots (holds in the tight regime).
            assert total_replicas >= origins

    def test_prefers_largest_available_node(self, tiny_instance):
        solution = GreedyG().solve(tiny_instance)
        # With generous deadlines, greedy serves from the biggest node.
        biggest = max(
            tiny_instance.placement_nodes,
            key=lambda v: tiny_instance.topology.capacity(v),
        )
        nodes_used = {a.node for a in solution.assignments.values()}
        assert biggest in nodes_used


class TestGraphSpecifics:
    def test_partition_covers_all_placement_nodes(self, paper_instance):
        parts = partition_placement_nodes(paper_instance, 4)
        assert set(parts) == set(paper_instance.placement_nodes)
        assert len(set(parts.values())) <= 4

    def test_single_part_trivial(self, paper_instance):
        parts = partition_placement_nodes(paper_instance, 1)
        assert set(parts.values()) == {0}

    def test_partition_deterministic(self, paper_instance):
        p1 = partition_placement_nodes(paper_instance, 3, seed=1)
        p2 = partition_placement_nodes(paper_instance, 3, seed=1)
        assert p1 == p2

    def test_no_new_replicas_at_assignment_time(self, paper_instance):
        """Graph only serves from preplaced copies; replica count per
        dataset never exceeds K regardless of admissions."""
        solution = GraphG().solve(paper_instance)
        for d_id, nodes in solution.replicas.items():
            assert len(nodes) <= paper_instance.max_replicas

    def test_explicit_num_parts(self, paper_instance):
        solution = GraphG(num_parts=2).solve(paper_instance)
        verify_solution(paper_instance, solution)
        assert solution.extras["num_parts"] <= 2


class TestPopularitySpecifics:
    def test_popularity_sums_to_one(self, paper_instance):
        state = ClusterState(paper_instance)
        pop = node_popularity(state)
        assert sum(pop.values()) == pytest.approx(1.0)

    def test_popularity_tracks_replicas(self, paper_instance):
        state = ClusterState(paper_instance)
        v = paper_instance.placement_nodes[0]
        before = node_popularity(state)[v]
        # Place replicas of two datasets on v (if it is not their origin).
        placed = 0
        for d_id, ds in paper_instance.datasets.items():
            if ds.origin_node != v and placed < 2:
                state.replicas.place(d_id, v)
                placed += 1
        after = node_popularity(state)[v]
        assert after > before

    def test_rich_get_richer(self, paper_instance):
        """Popularity concentrates replicas on few nodes."""
        solution = PopularityG().solve(paper_instance)
        node_counts: dict[int, int] = {}
        for nodes in solution.replicas.values():
            for v in nodes:
                node_counts[v] = node_counts.get(v, 0) + 1
        top_share = max(node_counts.values()) / sum(node_counts.values())
        assert top_share > 1.5 / len(paper_instance.placement_nodes)


def _solve_popularity_naive(instance, *, special: bool):
    """The pre-counter Popularity solvers: full recompute per pair.

    Byte-for-byte the solver loops of :class:`PopularityS` /
    :class:`PopularityG` with ``counter=None`` — the reference path the
    incremental :class:`ReplicaPopularityCounter` must match exactly.
    """
    name = "popularity-s" if special else "popularity-g"
    if special:
        require_special_case(instance, name)
    state = ClusterState(instance)
    builder = SolutionBuilder(instance, name)
    for query in instance.queries:
        if special:
            assignment = _popularity_place_pair(state, query, query.demanded[0])
            if assignment is None:
                builder.reject(query.query_id)
            else:
                builder.admit(query.query_id, [assignment])
            continue
        assignments: list[Assignment] = []
        failed = False
        for d_id in query.demanded:
            a = _popularity_place_pair(state, query, d_id)
            if a is None:
                failed = True
                break
            assignments.append(a)
        if failed:
            for a in assignments:
                state.release(a)
            builder.reject(query.query_id)
        else:
            builder.admit(query.query_id, assignments)
    builder.extra("replicas_total", state.replicas.total_replicas())
    return builder.build(state)


class TestPopularityCounterParity:
    """The incremental counter is bit-identical to the naive recompute."""

    def test_counter_matches_recompute_under_placements(self, paper_instance):
        state = ClusterState(paper_instance)
        counter = ReplicaPopularityCounter(state)
        assert counter.popularity() == node_popularity(state)
        # Interleave placements with comparisons: shares and the solver's
        # ranked order must agree exactly (floats included) every step.
        placed = 0
        for d_id, ds in sorted(paper_instance.datasets.items()):
            for v in paper_instance.placement_nodes:
                if placed >= 12:
                    break
                if state.replicas.has(d_id, v) or not state.replicas.can_place(d_id, v):
                    continue
                state.replicas.place(d_id, v)
                counter.record_placement(v)
                placed += 1
                fast, naive = counter.popularity(), node_popularity(state)
                assert fast == naive  # exact dict equality, no tolerance
                rank_fast = sorted(state.nodes, key=lambda u: (-fast[u], u))
                rank_naive = sorted(state.nodes, key=lambda u: (-naive[u], u))
                assert rank_fast == rank_naive
        assert placed == 12

    def test_empty_state_all_zero(self, tiny_instance):
        # A live state always carries origin copies, so reach the
        # total == 0 edge by draining the counter's seed sources.
        state = ClusterState(tiny_instance)
        counter = ReplicaPopularityCounter(state)
        counter._counts = {v: 0 for v in state.nodes}
        counter._total = 0
        zero = counter.popularity()
        assert set(zero) == set(state.nodes)
        assert all(p == 0.0 for p in zero.values())

    def test_popularity_s_solution_identical(self, special_instance):
        fast = PopularityS().solve(special_instance)
        naive = _solve_popularity_naive(special_instance, special=True)
        assert fast.assignments == naive.assignments
        assert fast.rejected == naive.rejected
        assert fast.replicas == naive.replicas
        assert fast.extras["replicas_total"] == naive.extras["replicas_total"]

    def test_popularity_g_solution_identical(self, paper_instance):
        fast = PopularityG().solve(paper_instance)
        naive = _solve_popularity_naive(paper_instance, special=False)
        assert fast.assignments == naive.assignments
        assert fast.rejected == naive.rejected
        assert fast.replicas == naive.replicas
        assert fast.extras["replicas_total"] == naive.extras["replicas_total"]


class TestShipGreedyRule:
    """The freight-charging greedy variant (``rule="greedy-ship"``).

    Admission-time replication ships the dataset from its nearest live
    holder and the transfer counts against the deadline — so a tight
    deadline that the free-replication walk happily admits is rejected,
    unless a copy was pre-placed ahead of demand.
    """

    DATASET = 0

    @staticmethod
    def _instance(small_topology, deadline_s):
        from repro.core.instance import ProblemInstance
        from repro.core.types import Dataset, Query

        placement = small_topology.placement_nodes
        datasets = {
            0: Dataset(
                dataset_id=0,
                volume_gb=4.0,
                origin_node=placement[0],
                name="S0",
            )
        }
        query = Query(
            query_id=0,
            home_node=placement[5],
            demanded=(0,),
            selectivity=(0.5,),
            compute_rate=1.0,
            deadline_s=deadline_s,
        )
        return ProblemInstance(
            topology=small_topology,
            datasets=datasets,
            queries=[query],
            max_replicas=3,
        )

    def test_freight_blows_tight_deadline(self, small_topology):
        # Deadline below the origin's latency: every other node meets the
        # bare deadline but not deadline-minus-freight.
        instance = self._instance(small_topology, deadline_s=0.6)
        state = ClusterState(instance)
        query = instance.queries[0]
        assert _ship_greedy_place_pair(state, query, self.DATASET) is None
        # No slot burning either: the failed walk left only the origin.
        assert state.replicas.total_replicas() == 1

    def test_free_replication_admits_same_pair(self, small_topology):
        # The paper-faithful walk replicates for free, so the very same
        # pair is admitted — the delta IS the shipping freight.
        instance = self._instance(small_topology, deadline_s=0.6)
        state = ClusterState(instance)
        query = instance.queries[0]
        assert _greedy_place_pair(state, query, self.DATASET) is not None

    def test_preplaced_copy_rescues_admission(self, small_topology):
        # A copy shipped ahead of demand serves at bare latency.
        instance = self._instance(small_topology, deadline_s=0.6)
        state = ClusterState(instance)
        query = instance.queries[0]
        target = small_topology.placement_nodes[3]
        state.replicas.place(self.DATASET, target)
        assignment = _ship_greedy_place_pair(state, query, self.DATASET)
        assert assignment is not None
        assert assignment.node == target

    def test_pays_freight_under_loose_deadline(self, small_topology):
        # With the origin compute-saturated and a deadline that covers
        # latency + freight at exactly one node, the walk ships there.
        instance = self._instance(small_topology, deadline_s=1.75)
        state = ClusterState(instance)
        query = instance.queries[0]
        origin = small_topology.placement_nodes[0]
        node = state.nodes[origin]
        node.allocate("block", node.available_ghz)
        assignment = _ship_greedy_place_pair(state, query, self.DATASET)
        assert assignment is not None
        assert assignment.node == small_topology.placement_nodes[3]
        assert state.replicas.has(self.DATASET, assignment.node)

    def test_no_live_holder_refuses(self, small_topology):
        instance = self._instance(small_topology, deadline_s=10.0)
        state = ClusterState(instance)
        origin = small_topology.placement_nodes[0]
        state.mark_down(origin)
        assert (
            _ship_greedy_place_pair(state, instance.queries[0], self.DATASET)
            is None
        )
