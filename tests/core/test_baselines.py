"""Tests for the Greedy, Graph-partitioning and Popularity baselines."""

import pytest

from repro.cluster.state import ClusterState
from repro.core import (
    GraphG,
    GraphS,
    GreedyG,
    GreedyS,
    PopularityG,
    PopularityS,
    evaluate_solution,
    verify_solution,
)
from repro.core.graph_partition import partition_placement_nodes
from repro.core.popularity import node_popularity
from repro.util.validation import ValidationError


@pytest.mark.parametrize("algo_cls", [GreedyG, GraphG, PopularityG])
class TestGeneralBaselines:
    def test_solves_and_verifies(self, paper_instance, algo_cls):
        solution = algo_cls().solve(paper_instance)
        verify_solution(paper_instance, solution)

    def test_deterministic(self, paper_instance, algo_cls):
        s1 = algo_cls().solve(paper_instance)
        s2 = algo_cls().solve(paper_instance)
        assert s1.admitted == s2.admitted

    def test_deadlines_met(self, paper_instance, algo_cls):
        solution = algo_cls().solve(paper_instance)
        for a in solution.assignments.values():
            assert a.latency_s <= paper_instance.query(a.query_id).deadline_s

    def test_tiny_instance_full_admission(self, tiny_instance, algo_cls):
        solution = algo_cls().solve(tiny_instance)
        assert solution.num_admitted == 3


@pytest.mark.parametrize("algo_cls", [GreedyS, GraphS, PopularityS])
class TestSpecialBaselines:
    def test_solves_and_verifies(self, special_instance, algo_cls):
        solution = algo_cls().solve(special_instance)
        verify_solution(special_instance, solution)

    def test_rejects_general_instance(self, paper_instance, algo_cls):
        with pytest.raises(ValidationError, match="special case"):
            algo_cls().solve(paper_instance)


class TestGreedySpecifics:
    def test_burned_replicas_persist_after_rejection(self, paper_instance):
        """The benchmark's defining waste: rejected queries leave replicas."""
        solution = GreedyG().solve(paper_instance)
        if solution.rejected:
            total_replicas = sum(
                len(nodes) for nodes in solution.replicas.values()
            )
            origins = len(paper_instance.datasets)
            served_nodes = {
                (a.dataset_id, a.node) for a in solution.assignments.values()
            }
            # Strictly more copies than origins + served locations would need
            # is the signature of burned slots (holds in the tight regime).
            assert total_replicas >= origins

    def test_prefers_largest_available_node(self, tiny_instance):
        solution = GreedyG().solve(tiny_instance)
        # With generous deadlines, greedy serves from the biggest node.
        biggest = max(
            tiny_instance.placement_nodes,
            key=lambda v: tiny_instance.topology.capacity(v),
        )
        nodes_used = {a.node for a in solution.assignments.values()}
        assert biggest in nodes_used


class TestGraphSpecifics:
    def test_partition_covers_all_placement_nodes(self, paper_instance):
        parts = partition_placement_nodes(paper_instance, 4)
        assert set(parts) == set(paper_instance.placement_nodes)
        assert len(set(parts.values())) <= 4

    def test_single_part_trivial(self, paper_instance):
        parts = partition_placement_nodes(paper_instance, 1)
        assert set(parts.values()) == {0}

    def test_partition_deterministic(self, paper_instance):
        p1 = partition_placement_nodes(paper_instance, 3, seed=1)
        p2 = partition_placement_nodes(paper_instance, 3, seed=1)
        assert p1 == p2

    def test_no_new_replicas_at_assignment_time(self, paper_instance):
        """Graph only serves from preplaced copies; replica count per
        dataset never exceeds K regardless of admissions."""
        solution = GraphG().solve(paper_instance)
        for d_id, nodes in solution.replicas.items():
            assert len(nodes) <= paper_instance.max_replicas

    def test_explicit_num_parts(self, paper_instance):
        solution = GraphG(num_parts=2).solve(paper_instance)
        verify_solution(paper_instance, solution)
        assert solution.extras["num_parts"] <= 2


class TestPopularitySpecifics:
    def test_popularity_sums_to_one(self, paper_instance):
        state = ClusterState(paper_instance)
        pop = node_popularity(state)
        assert sum(pop.values()) == pytest.approx(1.0)

    def test_popularity_tracks_replicas(self, paper_instance):
        state = ClusterState(paper_instance)
        v = paper_instance.placement_nodes[0]
        before = node_popularity(state)[v]
        # Place replicas of two datasets on v (if it is not their origin).
        placed = 0
        for d_id, ds in paper_instance.datasets.items():
            if ds.origin_node != v and placed < 2:
                state.replicas.place(d_id, v)
                placed += 1
        after = node_popularity(state)[v]
        assert after > before

    def test_rich_get_richer(self, paper_instance):
        """Popularity concentrates replicas on few nodes."""
        solution = PopularityG().solve(paper_instance)
        node_counts: dict[int, int] = {}
        for nodes in solution.replicas.values():
            for v in nodes:
                node_counts[v] = node_counts.get(v, 0) + 1
        top_share = max(node_counts.values()) / sum(node_counts.values())
        assert top_share > 1.5 / len(paper_instance.placement_nodes)
