"""Tests for pay-as-you-go billing."""

import pytest

from repro.cluster.consistency import ConsistencyModel
from repro.core import PricingModel, bill_solution, make_algorithm
from repro.core.types import PlacementSolution
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.util.validation import ValidationError
from repro.workload.params import PaperDefaults


@pytest.fixture(scope="module")
def billed():
    instance = make_instance(TwoTierConfig(), PaperDefaults(), 1, 0)
    solution = make_algorithm("appro-g").solve(instance)
    return instance, solution, bill_solution(instance, solution)


class TestInvoice:
    def test_revenue_tracks_served_volume(self, billed):
        instance, solution, invoice = billed
        served = sum(
            instance.dataset(d).volume_gb for (_, d) in solution.assignments
        )
        assert invoice.served_gb == pytest.approx(served)
        assert invoice.revenue == pytest.approx(
            PricingModel().revenue_per_gb * served
        )

    def test_profit_identity(self, billed):
        _, _, invoice = billed
        assert invoice.profit == pytest.approx(
            invoice.revenue - invoice.total_cost
        )

    def test_seeded_counts_non_origin_copies(self, billed):
        instance, solution, invoice = billed
        expected = sum(
            (len(nodes) - 1) * instance.dataset(d).volume_gb
            for d, nodes in solution.replicas.items()
        )
        assert invoice.seeded_gb == pytest.approx(expected)

    def test_local_service_has_no_intermediate_transfer(self, billed):
        instance, solution, invoice = billed
        remote = sum(
            instance.query(q).alpha_for(d) * instance.dataset(d).volume_gb
            for (q, d), a in solution.assignments.items()
            if a.node != instance.query(q).home_node
        )
        assert invoice.intermediate_gb == pytest.approx(remote)

    def test_sync_cost_scales_with_growth(self, billed):
        instance, solution, _ = billed
        calm = bill_solution(
            instance,
            solution,
            PricingModel(consistency=ConsistencyModel(growth_rate_per_day=0.0)),
        )
        busy = bill_solution(
            instance,
            solution,
            PricingModel(consistency=ConsistencyModel(growth_rate_per_day=0.2)),
        )
        assert calm.sync_cost == 0.0
        assert busy.sync_cost > 0.0

    def test_empty_solution_costs_only_nothing(self, billed):
        instance, _, _ = billed
        empty = PlacementSolution(
            algorithm="none",
            replicas={
                d: (ds.origin_node,) for d, ds in instance.datasets.items()
            },
            assignments={},
            admitted=frozenset(),
            rejected=frozenset(range(instance.num_queries)),
        )
        invoice = bill_solution(instance, empty)
        assert invoice.revenue == 0.0
        assert invoice.total_cost == 0.0

    def test_invalid_pricing_rejected(self):
        with pytest.raises(ValidationError):
            PricingModel(revenue_per_gb=0.0)


class TestProviderIncomeClaim:
    def test_appro_maximises_provider_profit(self):
        """The paper's §1 claim: the volume objective maximises income."""
        profits = {n: 0.0 for n in ("appro-g", "greedy-g", "popularity-g")}
        for seed in range(6):
            instance = make_instance(TwoTierConfig(), PaperDefaults(), seed, 0)
            for name in profits:
                invoice = bill_solution(
                    instance, make_algorithm(name).solve(instance)
                )
                profits[name] += invoice.profit / 6
        assert profits["appro-g"] > profits["greedy-g"]
        assert profits["appro-g"] > profits["popularity-g"]
