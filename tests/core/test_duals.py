"""Tests for dual prices and the paper-faithful dual certificate."""

import pytest

from repro.cluster.state import ClusterState
from repro.core import evaluate_solution, make_algorithm
from repro.core.duals import NodePrices, dual_certificate


class TestNodePricesValidation:
    def test_floor_must_be_fraction(self):
        with pytest.raises(Exception):
            NodePrices(theta_floor=0.0)
        with pytest.raises(ValueError):
            NodePrices(theta_floor=1.0)

    def test_theta_all_covers_placement_nodes(self, tiny_instance):
        state = ClusterState(tiny_instance)
        prices = NodePrices()
        thetas = prices.theta_all(state)
        assert set(thetas) == set(tiny_instance.placement_nodes)
        assert all(0.0 < t <= 1.0 for t in thetas.values())


class TestDualCertificate:
    def test_positive(self, paper_instance):
        state = ClusterState(paper_instance)
        cert = dual_certificate(paper_instance, state, NodePrices())
        assert cert > 0.0

    def test_upper_bounds_every_algorithm(self, paper_instance):
        """The certificate reported by Appro bounds all primal objectives
        on the same instance (weak-duality direction of Theorem 1)."""
        solution = make_algorithm("appro-g").solve(paper_instance)
        cert = solution.extras["dual_objective"]
        for name in ("appro-g", "greedy-g", "graph-g", "popularity-g"):
            primal = evaluate_solution(
                paper_instance, make_algorithm(name).solve(paper_instance)
            ).admitted_volume_gb
            assert primal <= cert

    def test_grows_with_utilisation(self, paper_instance):
        """Higher θ (fuller nodes) raises the capacity term of (8)."""
        idle = ClusterState(paper_instance)
        prices = NodePrices()
        cert_idle = dual_certificate(paper_instance, idle, prices)

        busy = ClusterState(paper_instance)
        for v, node in busy.nodes.items():
            node.allocate("fill", node.available_ghz / 2.0)
        cert_busy = dual_certificate(paper_instance, busy, prices)
        # The capacity term grows; the η term shrinks slightly with θ, but
        # on the paper instance the capacity term dominates the delta.
        assert cert_busy != cert_idle

    def test_deterministic(self, paper_instance):
        state = ClusterState(paper_instance)
        prices = NodePrices()
        assert dual_certificate(
            paper_instance, state, prices
        ) == dual_certificate(paper_instance, state, prices)
