"""Tests for rejection diagnosis."""

import pytest

from repro.core import make_algorithm
from repro.core.explain import (
    RejectionReason,
    explain_rejections,
    rejection_histogram,
)
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults


@pytest.fixture(scope="module")
def diagnosed():
    instance = make_instance(TwoTierConfig(), PaperDefaults(), 0, 0)
    solution = make_algorithm("appro-g").solve(instance)
    return instance, solution, explain_rejections(instance, solution)


class TestExplainRejections:
    def test_covers_exactly_the_rejected(self, diagnosed):
        _, solution, diagnoses = diagnosed
        assert set(diagnoses) == set(solution.rejected)

    def test_every_pair_diagnosed(self, diagnosed):
        instance, _, diagnoses = diagnosed
        for q_id, diagnosis in diagnoses.items():
            query = instance.query(q_id)
            assert {p.dataset_id for p in diagnosis.pairs} == set(query.demanded)

    def test_counts_consistent(self, diagnosed):
        instance, solution, diagnoses = diagnosed
        for diagnosis in diagnoses.values():
            for pair in diagnosis.pairs:
                assert 0 <= pair.feasible_holders <= pair.delay_feasible_nodes
                assert pair.delay_feasible_nodes <= instance.num_placement_nodes

    def test_no_delay_reason_means_zero_feasible(self, diagnosed):
        _, _, diagnoses = diagnosed
        for diagnosis in diagnoses.values():
            for pair in diagnosis.pairs:
                if pair.reason is RejectionReason.NO_DELAY_FEASIBLE_NODE:
                    assert pair.delay_feasible_nodes == 0
                else:
                    assert pair.delay_feasible_nodes > 0

    def test_read_only(self, diagnosed):
        _, _, diagnoses = diagnosed
        with pytest.raises(TypeError):
            diagnoses[99999] = None

    def test_bottleneck_ordering(self, diagnosed):
        """The bottleneck is the most fundamental reason among the pairs."""
        _, _, diagnoses = diagnosed
        for diagnosis in diagnoses.values():
            reasons = {p.reason for p in diagnosis.pairs}
            if RejectionReason.NO_DELAY_FEASIBLE_NODE in reasons:
                assert (
                    diagnosis.bottleneck
                    is RejectionReason.NO_DELAY_FEASIBLE_NODE
                )


class TestHistogram:
    def test_histogram_totals(self, diagnosed):
        _, solution, diagnoses = diagnosed
        hist = rejection_histogram(diagnoses)
        assert sum(hist.values()) == len(solution.rejected)
        assert set(hist) == set(RejectionReason)

    def test_tight_k_shows_replica_exhaustion(self):
        """With K = 1, rejections are dominated by replica exhaustion (the
        origin is the only copy) rather than capacity."""
        params = PaperDefaults().with_max_replicas(1)
        instance = make_instance(TwoTierConfig(), params, 3, 0)
        solution = make_algorithm("appro-g").solve(instance)
        hist = rejection_histogram(explain_rejections(instance, solution))
        assert hist[RejectionReason.REPLICAS_EXHAUSTED] >= hist[
            RejectionReason.CAPACITY_EXHAUSTED
        ]

    def test_loose_everything_rejects_nothing(self, tiny_instance):
        solution = make_algorithm("appro-g").solve(tiny_instance)
        diagnoses = explain_rejections(tiny_instance, solution)
        assert diagnoses == {} or all(
            d.bottleneck is RejectionReason.SERVABLE for d in diagnoses.values()
        )
