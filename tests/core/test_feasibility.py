"""Tests for shared feasibility queries."""

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.core.feasibility import (
    candidate_nodes,
    candidate_set,
    delay_feasible_nodes,
    pair_latency_vector,
)


class TestDelayFeasibleNodes:
    def test_matches_scalar_check(self, paper_instance):
        state = ClusterState(paper_instance)
        for q in paper_instance.queries[:10]:
            for d_id in q.demanded:
                d = paper_instance.dataset(d_id)
                fast = set(int(v) for v in delay_feasible_nodes(state, q, d))
                slow = {
                    v
                    for v in paper_instance.placement_nodes
                    if paper_instance.pair_latency(q, d, v) <= q.deadline_s
                }
                assert fast == slow

    def test_generous_deadline_all_feasible(self, tiny_instance):
        state = ClusterState(tiny_instance)
        q = tiny_instance.query(0)
        d = tiny_instance.dataset(0)
        assert len(delay_feasible_nodes(state, q, d)) == len(
            tiny_instance.placement_nodes
        )


class TestCandidateNodes:
    def test_candidates_subset_of_delay_feasible(self, paper_instance):
        state = ClusterState(paper_instance)
        q = paper_instance.queries[0]
        d = paper_instance.dataset(q.demanded[0])
        delay_ok = set(int(v) for v in delay_feasible_nodes(state, q, d))
        for c in candidate_nodes(state, q, d):
            assert c.node in delay_ok

    def test_latency_recorded_correctly(self, paper_instance):
        state = ClusterState(paper_instance)
        q = paper_instance.queries[0]
        d = paper_instance.dataset(q.demanded[0])
        for c in candidate_nodes(state, q, d):
            assert c.latency_s == pytest.approx(
                paper_instance.pair_latency(q, d, c.node)
            )
            assert c.latency_s <= q.deadline_s

    def test_has_replica_flag(self, tiny_instance):
        state = ClusterState(tiny_instance)
        q = tiny_instance.query(0)
        d = tiny_instance.dataset(0)
        flags = {c.node: c.has_replica for c in candidate_nodes(state, q, d)}
        assert flags[d.origin_node] is True
        assert not any(
            has for node, has in flags.items() if node != d.origin_node
        )

    def test_k_exhaustion_limits_candidates(self, tiny_instance):
        state = ClusterState(tiny_instance)  # K = 2
        d = tiny_instance.dataset(0)
        others = [
            v for v in tiny_instance.placement_nodes if v != d.origin_node
        ]
        state.replicas.place(0, others[0])
        q = tiny_instance.query(0)
        nodes = {c.node for c in candidate_nodes(state, q, d)}
        assert nodes == {d.origin_node, others[0]}

    def test_full_node_excluded(self, tiny_instance):
        state = ClusterState(tiny_instance)
        q = tiny_instance.query(0)
        d = tiny_instance.dataset(0)
        victim = d.origin_node
        state.nodes[victim].allocate("filler", state.nodes[victim].available_ghz)
        nodes = {c.node for c in candidate_nodes(state, q, d)}
        assert victim not in nodes


class TestCandidateSet:
    def test_arrays_are_parallel_and_consistent(self, paper_instance):
        state = ClusterState(paper_instance)
        q = paper_instance.queries[0]
        d = paper_instance.dataset(q.demanded[0])
        cs = candidate_set(state, q, d)
        assert len(cs) == cs.nodes.size == cs.indices.size
        assert cs.latency_s.size == cs.has_replica.size == len(cs)
        placement = list(paper_instance.placement_nodes)
        for node, idx in zip(cs.nodes, cs.indices):
            assert placement[int(idx)] == int(node)

    def test_latency_slice_reuses_deadline_vector(self, paper_instance):
        state = ClusterState(paper_instance)
        q = paper_instance.queries[0]
        d = paper_instance.dataset(q.demanded[0])
        cs = candidate_set(state, q, d)
        full = pair_latency_vector(state, q, d)
        assert np.array_equal(cs.latency_s, full[cs.indices])

    def test_matches_candidate_nodes_view(self, paper_instance):
        state = ClusterState(paper_instance)
        for q in paper_instance.queries[:5]:
            d = paper_instance.dataset(q.demanded[0])
            cs = candidate_set(state, q, d)
            objs = candidate_nodes(state, q, d)
            assert [c.node for c in objs] == [int(v) for v in cs.nodes]
            assert [c.has_replica for c in objs] == list(map(bool, cs.has_replica))

    def test_take_boolean_mask(self, paper_instance):
        state = ClusterState(paper_instance)
        q = paper_instance.queries[0]
        d = paper_instance.dataset(q.demanded[0])
        cs = candidate_set(state, q, d)
        if not cs:
            pytest.skip("no candidates for this pair")
        mask = np.zeros(len(cs), dtype=bool)
        mask[0] = True
        sub = cs.take(mask)
        assert len(sub) == 1 and bool(sub)
        assert int(sub.nodes[0]) == int(cs.nodes[0])
        empty = cs.take(np.zeros(len(cs), dtype=bool))
        assert len(empty) == 0 and not empty
