"""Tests for the ILP model, LP relaxation and branch-and-bound."""

import numpy as np
import pytest

from repro.core import (
    ApproG,
    build_lp_model,
    evaluate_solution,
    make_algorithm,
    solve_ilp,
    solve_lp_relaxation,
)
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

SMALL = TwoTierConfig(
    num_data_centers=2, num_cloudlets=5, num_switches=1, num_base_stations=1
)
SMALL_PARAMS = (
    PaperDefaults()
    .with_num_queries(6)
    .with_num_datasets(3)
    .with_max_datasets_per_query(2)
)


@pytest.fixture(scope="module")
def small_instances():
    return [make_instance(SMALL, SMALL_PARAMS, 13, r) for r in range(4)]


class TestBuildModel:
    def test_triples_are_delay_feasible(self, small_instances):
        instance = small_instances[0]
        model = build_lp_model(instance)
        for q_id, d_id, v in model.triples:
            q = instance.query(q_id)
            d = instance.dataset(d_id)
            assert instance.pair_latency(q, d, v) <= q.deadline_s

    def test_origin_bounds_pinned(self, small_instances):
        instance = small_instances[0]
        model = build_lp_model(instance)
        n_pi = len(model.triples)
        origins = {
            (d.dataset_id, d.origin_node) for d in instance.datasets.values()
        }
        for i, key in enumerate(model.placements):
            low, high = model.bounds[n_pi + i]
            if key in origins:
                assert (low, high) == (1.0, 1.0)
            else:
                assert (low, high) == (0.0, 1.0)

    def test_objective_negated_volumes(self, small_instances):
        instance = small_instances[0]
        model = build_lp_model(instance)
        for t, (q_id, d_id, _) in enumerate(model.triples):
            assert model.costs[t] == -instance.dataset(d_id).volume_gb


class TestLpRelaxation:
    def test_bounds_any_algorithm(self, small_instances):
        for instance in small_instances:
            lp = solve_lp_relaxation(instance)
            for name in ("appro-g", "greedy-g", "graph-g", "popularity-g"):
                primal = evaluate_solution(
                    instance, make_algorithm(name).solve(instance)
                ).admitted_volume_gb
                assert primal <= lp.objective + 1e-6

    def test_solution_within_box(self, small_instances):
        lp = solve_lp_relaxation(small_instances[0])
        z = np.concatenate([lp.pi, lp.x])
        assert np.all(z >= -1e-9)
        assert np.all(z <= 1.0 + 1e-9)

    def test_upper_bounded_by_total_demand(self, small_instances):
        for instance in small_instances:
            lp = solve_lp_relaxation(instance)
            assert lp.objective <= instance.total_demanded_volume() + 1e-6


class TestBranchAndBound:
    def test_ilp_between_primal_and_lp(self, small_instances):
        for instance in small_instances:
            lp = solve_lp_relaxation(instance)
            ilp = solve_ilp(instance)
            assert ilp.integral
            assert ilp.objective <= lp.objective + 1e-6
            primal = evaluate_solution(
                instance, ApproG(partial_admission=True).solve(instance)
            ).admitted_volume_gb
            assert primal <= ilp.objective + 1e-6

    def test_integral_solution_variables(self, small_instances):
        ilp = solve_ilp(small_instances[0])
        z = np.concatenate([ilp.pi, ilp.x])
        frac = np.minimum(np.abs(z), np.abs(1 - z))
        assert frac.max() <= 1e-6

    def test_node_budget_enforced(self, small_instances):
        with pytest.raises(RuntimeError, match="nodes"):
            solve_ilp(small_instances[0], max_nodes=1)

    def test_deterministic(self, small_instances):
        o1 = solve_ilp(small_instances[1]).objective
        o2 = solve_ilp(small_instances[1]).objective
        assert o1 == pytest.approx(o2)
