"""Tests for problem-instance validation and derived structures."""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.core.types import Dataset, Query
from repro.util.validation import ValidationError


def _query(query_id, home, demanded=(0,), deadline=5.0):
    return Query(
        query_id=query_id,
        home_node=home,
        demanded=demanded,
        selectivity=tuple(0.5 for _ in demanded),
        compute_rate=1.0,
        deadline_s=deadline,
    )


class TestValidation:
    def test_valid(self, tiny_instance):
        assert tiny_instance.num_queries == 3
        assert tiny_instance.num_datasets == 2

    def test_non_placement_origin_rejected(self, small_topology):
        switch = small_topology.switches[0]
        datasets = {0: Dataset(dataset_id=0, volume_gb=1.0, origin_node=switch)}
        with pytest.raises(ValidationError, match="non-placement"):
            ProblemInstance(
                topology=small_topology,
                datasets=datasets,
                queries=[_query(0, small_topology.placement_nodes[0])],
            )

    def test_non_dense_query_ids_rejected(self, small_topology):
        placement = small_topology.placement_nodes
        datasets = {0: Dataset(dataset_id=0, volume_gb=1.0, origin_node=placement[0])}
        with pytest.raises(ValidationError, match="dense"):
            ProblemInstance(
                topology=small_topology,
                datasets=datasets,
                queries=[_query(5, placement[0])],
            )

    def test_unknown_demanded_dataset_rejected(self, small_topology):
        placement = small_topology.placement_nodes
        datasets = {0: Dataset(dataset_id=0, volume_gb=1.0, origin_node=placement[0])}
        with pytest.raises(ValidationError, match="unknown dataset"):
            ProblemInstance(
                topology=small_topology,
                datasets=datasets,
                queries=[_query(0, placement[0], demanded=(7,))],
            )

    def test_non_placement_home_rejected(self, small_topology):
        placement = small_topology.placement_nodes
        datasets = {0: Dataset(dataset_id=0, volume_gb=1.0, origin_node=placement[0])}
        with pytest.raises(ValidationError, match="home"):
            ProblemInstance(
                topology=small_topology,
                datasets=datasets,
                queries=[_query(0, small_topology.switches[0])],
            )

    def test_zero_max_replicas_rejected(self, small_topology):
        placement = small_topology.placement_nodes
        datasets = {0: Dataset(dataset_id=0, volume_gb=1.0, origin_node=placement[0])}
        with pytest.raises(Exception):
            ProblemInstance(
                topology=small_topology,
                datasets=datasets,
                queries=[_query(0, placement[0])],
                max_replicas=0,
            )


class TestDerived:
    def test_capacities_order(self, tiny_instance):
        caps = tiny_instance.capacities
        for i, v in enumerate(tiny_instance.placement_nodes):
            assert caps[i] == tiny_instance.topology.capacity(v)

    def test_arrays_read_only(self, tiny_instance):
        with pytest.raises(ValueError):
            tiny_instance.capacities[0] = 1.0
        with pytest.raises(ValueError):
            tiny_instance.proc_delays[0] = 1.0

    def test_home_delay_vectors(self, tiny_instance):
        for q in tiny_instance.queries:
            vec = tiny_instance.home_delay_vectors[q.home_node]
            assert len(vec) == tiny_instance.num_placement_nodes
            idx = tiny_instance.node_index[q.home_node]
            assert vec[idx] == 0.0

    def test_node_index_inverse(self, tiny_instance):
        for v, i in tiny_instance.node_index.items():
            assert tiny_instance.placement_nodes[i] == v

    def test_total_demanded_volume(self, tiny_instance):
        # q0: S0(2) + q1: S0(2)+S1(4) + q2: S1(4) = 12
        assert tiny_instance.total_demanded_volume() == pytest.approx(12.0)

    def test_is_special_case(self, tiny_instance, special_instance):
        assert not tiny_instance.is_special_case()
        assert special_instance.is_special_case()

    def test_pair_latency_formula(self, tiny_instance):
        q = tiny_instance.query(1)
        d = tiny_instance.dataset(1)
        v = tiny_instance.placement_nodes[0]
        expected = d.volume_gb * (
            tiny_instance.topology.proc_delay(v)
            + q.alpha_for(1) * tiny_instance.paths.delay(v, q.home_node)
        )
        assert tiny_instance.pair_latency(q, d, v) == pytest.approx(expected)

    def test_pair_latency_at_home_is_processing_only(self, tiny_instance):
        q = tiny_instance.query(0)
        d = tiny_instance.dataset(0)
        home = q.home_node
        assert tiny_instance.pair_latency(q, d, home) == pytest.approx(
            d.volume_gb * tiny_instance.topology.proc_delay(home)
        )
