"""Bit-parity of the vectorised LP/ILP pipeline against the scalar reference.

Same contract as ``test_vector_parity.py``: every vectorised quantity must
equal the scalar computation it replaced *bitwise* — identical triples,
placements, costs, ``A_ub`` (including COO entry order), ``b_ub`` and
bounds; identical LP objectives through the shared-model solve path;
identical greedy incumbents; deterministic branch-and-bound.
"""

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.core.ilp import (
    _greedy_incumbent,
    build_lp_model,
    build_lp_model_scalar,
    solve_ilp,
    solve_lp_from_model,
    solve_lp_relaxation,
)
from repro.core.instance import ProblemInstance
from repro.core.types import Dataset, Query
from repro.experiments.runner import make_instance
from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.twotier import (
    EdgeCloudTopology,
    TwoTierConfig,
    generate_two_tier,
)
from repro.workload.params import PaperDefaults

_TOPOLOGY = TwoTierConfig(
    num_data_centers=2,
    num_cloudlets=8,
    num_switches=2,
    num_base_stations=3,
)
_SMALL_TOPOLOGY = TwoTierConfig(
    num_data_centers=2, num_cloudlets=6, num_switches=1, num_base_stations=2
)
_SMALL_PARAMS = (
    PaperDefaults()
    .with_num_queries(8)
    .with_num_datasets(4)
    .with_max_datasets_per_query(2)
)
_SEEDS = (11, 23, 47)

_ARRAY_FIELDS = (
    "costs",
    "b_ub",
    "bounds",
    "pi_query",
    "pi_dataset",
    "pi_node",
    "pi_node_index",
    "pi_x_index",
    "pi_pair_index",
    "x_dataset",
    "x_node",
    "x_node_index",
    "x_origin_mask",
)


def _instance(seed, special=False):
    params = PaperDefaults()
    if special:
        params = params.single_dataset()
    return make_instance(_TOPOLOGY, params, seed, 0)


def _assert_models_identical(vector, scalar):
    assert vector.triples == scalar.triples
    assert vector.placements == scalar.placements
    for name in _ARRAY_FIELDS:
        assert np.array_equal(
            getattr(vector, name), getattr(scalar, name)
        ), name
    # COO entry order pinned too, not just the dense matrix.
    assert np.array_equal(vector.a_ub.row, scalar.a_ub.row)
    assert np.array_equal(vector.a_ub.col, scalar.a_ub.col)
    assert np.array_equal(vector.a_ub.data, scalar.a_ub.data)
    assert vector.a_ub.shape == scalar.a_ub.shape


# -- model build ---------------------------------------------------------


@pytest.mark.parametrize("seed", _SEEDS)
@pytest.mark.parametrize("special", [False, True])
def test_model_build_matches_scalar(seed, special):
    instance = _instance(seed, special=special)
    _assert_models_identical(
        build_lp_model(instance), build_lp_model_scalar(instance)
    )


def test_build_method_dispatch():
    instance = _instance(11)
    scalar = build_lp_model(instance, method="scalar")
    _assert_models_identical(build_lp_model(instance), scalar)
    with pytest.raises(ValueError, match="unknown build method"):
        build_lp_model(instance, method="turbo")


def _micro_topology():
    return generate_two_tier(
        TwoTierConfig(
            num_data_centers=1,
            num_cloudlets=2,
            num_switches=1,
            num_base_stations=1,
        ),
        seed=0,
    )


def test_empty_query_set_parity():
    topology = _micro_topology()
    pn = topology.placement_nodes
    instance = ProblemInstance(
        topology=topology,
        datasets={0: Dataset(0, 1.0, pn[0])},
        queries=[],
        max_replicas=2,
    )
    vector = build_lp_model(instance)
    _assert_models_identical(vector, build_lp_model_scalar(instance))
    assert vector.triples == ()
    # x variables exist for the origin copy even with no triples.
    assert vector.placements == ((0, pn[0]),)
    assert solve_lp_from_model(vector).objective == pytest.approx(0.0)


def test_no_feasible_triple_parity():
    # A deadline no node can meet: every pair is pruned, yet origins keep
    # their x variables and the model stays solvable.
    topology = _micro_topology()
    pn = topology.placement_nodes
    instance = ProblemInstance(
        topology=topology,
        datasets={0: Dataset(0, 2.0, pn[0])},
        queries=[
            Query(
                query_id=0,
                home_node=pn[0],
                demanded=(0,),
                selectivity=(0.5,),
                compute_rate=0.5,
                deadline_s=1e-9,
            )
        ],
        max_replicas=2,
    )
    vector = build_lp_model(instance)
    _assert_models_identical(vector, build_lp_model_scalar(instance))
    assert vector.triples == ()
    assert solve_lp_from_model(vector).objective == pytest.approx(0.0)
    assert solve_ilp(instance).objective == pytest.approx(0.0)


def test_disconnected_topology_parity():
    # No links at all: cross-node delays are inf, so only each query's own
    # home node can ever be delay-feasible.
    specs = [
        NodeSpec(i, NodeKind.CLOUDLET, f"cl{i}", 8.0, 0.05) for i in range(3)
    ]
    topology = EdgeCloudTopology(specs, {})
    instance = ProblemInstance(
        topology=topology,
        datasets={0: Dataset(0, 1.0, 0)},
        queries=[
            Query(
                query_id=0,
                home_node=1,
                demanded=(0,),
                selectivity=(0.5,),
                compute_rate=0.5,
                deadline_s=10.0,
            )
        ],
        max_replicas=2,
    )
    vector = build_lp_model(instance)
    _assert_models_identical(vector, build_lp_model_scalar(instance))
    assert all(node == 1 for _, _, node in vector.triples)


# -- shared-model solve path ---------------------------------------------


@pytest.mark.parametrize("seed", _SEEDS)
def test_solve_from_model_matches_relaxation(seed):
    instance = _instance(seed)
    from_model = solve_lp_from_model(build_lp_model(instance))
    standalone = solve_lp_relaxation(instance)
    assert from_model.objective == standalone.objective
    assert np.array_equal(from_model.pi, standalone.pi)
    assert np.array_equal(from_model.x, standalone.x)


# -- greedy incumbent ----------------------------------------------------


@pytest.mark.parametrize("seed", _SEEDS)
def test_greedy_incumbent_parity(seed):
    instance = _instance(seed)
    vector = build_lp_model(instance)
    scalar = build_lp_model_scalar(instance)
    lp = solve_lp_from_model(vector)
    for hint in (None, lp.pi):
        got = _greedy_incumbent(vector, instance, pi_hint=hint)
        ref = _greedy_incumbent(scalar, instance, pi_hint=hint)
        assert got.objective == ref.objective
        assert np.array_equal(got.pi, ref.pi)
        assert np.array_equal(got.x, ref.x)
        assert got.objective <= lp.objective + 1e-9


# -- branch-and-bound ----------------------------------------------------


@pytest.mark.parametrize("repeat", [0, 1, 2])
def test_solve_ilp_deterministic(repeat):
    instance = make_instance(_SMALL_TOPOLOGY, _SMALL_PARAMS, 7, repeat)
    first = solve_ilp(instance)
    second = solve_ilp(instance)
    assert first.objective == second.objective
    assert np.array_equal(first.pi, second.pi)
    assert np.array_equal(first.x, second.x)
    assert first.nodes_explored == second.nodes_explored


@pytest.mark.parametrize("repeat", [0, 1, 2])
def test_solve_ilp_shared_model_matches_standalone(repeat):
    instance = make_instance(_SMALL_TOPOLOGY, _SMALL_PARAMS, 7, repeat)
    model = build_lp_model(instance)
    root = solve_lp_from_model(model)
    shared = solve_ilp(instance, model=model, root=root)
    standalone = solve_ilp(instance)
    assert shared.objective == standalone.objective
    assert np.array_equal(shared.pi, standalone.pi)
    assert shared.nodes_explored == standalone.nodes_explored
    # Sandwich: incumbent ≤ OPT ≤ root LP.
    incumbent = _greedy_incumbent(model, instance)
    assert incumbent.objective <= shared.objective + 1e-9
    assert shared.objective <= root.objective + 1e-9


# -- batched can_serve ---------------------------------------------------


@pytest.mark.parametrize("seed", _SEEDS)
def test_can_serve_mask_matches_scalar(seed):
    instance = _instance(seed)
    state = ClusterState(instance)

    def check_all():
        for query in instance.queries[:10]:
            for d_id in query.demanded:
                dataset = instance.dataset(d_id)
                mask = state.can_serve_mask(query, dataset)
                for i, node in enumerate(instance.placement_nodes):
                    assert mask[i] == state.can_serve(
                        query, dataset, node
                    ), (query.query_id, d_id, node)

    check_all()
    # Mutate: serve a few pairs (consuming capacity and replica slots,
    # including exhausting K for one dataset) and re-check.
    served = 0
    for query in instance.queries:
        for d_id in query.demanded:
            dataset = instance.dataset(d_id)
            mask = state.can_serve_mask(query, dataset)
            if mask.any():
                node = int(instance.placement_nodes_array[mask][0])
                state.serve(query, dataset, node)
                served += 1
        if served >= 6:
            break
    assert served
    d0 = next(iter(instance.datasets))
    while state.replicas.remaining_slots(d0) > 0:
        free = [
            v
            for v in instance.placement_nodes
            if state.replicas.can_place(d0, v)
        ]
        if not free:
            break
        state.replicas.place(d0, free[0])
    check_all()
