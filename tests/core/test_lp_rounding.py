"""Tests for the LP-rounding placement algorithm."""

import pytest

from repro.core import (
    LpRoundingG,
    evaluate_solution,
    solve_ilp,
    solve_lp_relaxation,
    verify_solution,
)
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

SMALL = TwoTierConfig(
    num_data_centers=2, num_cloudlets=6, num_switches=1, num_base_stations=1
)
SMALL_PARAMS = (
    PaperDefaults()
    .with_num_queries(8)
    .with_num_datasets(4)
    .with_max_datasets_per_query(2)
)


@pytest.fixture(scope="module", params=range(3))
def small_instance(request):
    return make_instance(SMALL, SMALL_PARAMS, 41, request.param)


class TestLpRounding:
    def test_solves_and_verifies(self, small_instance):
        solution = LpRoundingG().solve(small_instance)
        verify_solution(small_instance, solution)

    def test_partial_mode(self, small_instance):
        solution = LpRoundingG(partial_admission=True).solve(small_instance)
        verify_solution(small_instance, solution, all_or_nothing=False)

    def test_below_lp_bound(self, small_instance):
        lp = solve_lp_relaxation(small_instance)
        primal = evaluate_solution(
            small_instance, LpRoundingG().solve(small_instance)
        ).admitted_volume_gb
        assert primal <= lp.objective + 1e-6

    def test_reports_lp_objective(self, small_instance):
        solution = LpRoundingG().solve(small_instance)
        lp = solve_lp_relaxation(small_instance)
        assert solution.extras["lp_objective"] == pytest.approx(lp.objective)

    def test_deterministic(self, small_instance):
        s1 = LpRoundingG().solve(small_instance)
        s2 = LpRoundingG().solve(small_instance)
        assert s1.admitted == s2.admitted

    def test_near_optimal_on_small_instances(self, small_instance):
        """Partial-mode rounding stays within a reasonable factor of OPT."""
        opt = solve_ilp(small_instance).objective
        got = evaluate_solution(
            small_instance,
            LpRoundingG(partial_admission=True).solve(small_instance),
        ).admitted_volume_gb
        if opt > 0:
            assert got >= 0.5 * opt

    def test_runs_on_paper_instance(self, paper_instance):
        solution = LpRoundingG().solve(paper_instance)
        verify_solution(paper_instance, solution)
        metrics = evaluate_solution(paper_instance, solution)
        assert metrics.admitted_volume_gb > 0
