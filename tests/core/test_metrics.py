"""Tests for solution metrics and the invariant checker."""

import dataclasses

import pytest

from repro.core.metrics import (
    InvariantViolation,
    evaluate_solution,
    verify_solution,
)
from repro.core.types import Assignment, PlacementSolution
from repro.core import make_algorithm


def _mutate(solution: PlacementSolution, **kw) -> PlacementSolution:
    return PlacementSolution(
        algorithm=solution.algorithm,
        replicas=kw.get("replicas", dict(solution.replicas)),
        assignments=kw.get("assignments", dict(solution.assignments)),
        admitted=kw.get("admitted", solution.admitted),
        rejected=kw.get("rejected", solution.rejected),
        extras=dict(solution.extras),
    )


@pytest.fixture(scope="module")
def solved(request):
    return None


@pytest.fixture()
def appro_solution(paper_instance):
    return make_algorithm("appro-g").solve(paper_instance)


class TestEvaluate:
    def test_volume_equals_assignment_sum(self, paper_instance, appro_solution):
        metrics = evaluate_solution(paper_instance, appro_solution)
        expected = sum(
            paper_instance.dataset(d).volume_gb
            for (_, d) in appro_solution.assignments
        )
        assert metrics.admitted_volume_gb == pytest.approx(expected)

    def test_throughput_fraction(self, paper_instance, appro_solution):
        metrics = evaluate_solution(paper_instance, appro_solution)
        assert metrics.throughput == pytest.approx(
            len(appro_solution.admitted) / paper_instance.num_queries
        )
        assert 0.0 <= metrics.throughput <= 1.0

    def test_utilization_bounded(self, paper_instance, appro_solution):
        metrics = evaluate_solution(paper_instance, appro_solution)
        assert 0.0 <= metrics.mean_utilization <= 1.0

    def test_replicas_placed_excludes_origins(self, paper_instance, appro_solution):
        metrics = evaluate_solution(paper_instance, appro_solution)
        assert metrics.replicas_placed == sum(
            len(nodes) - 1 for nodes in appro_solution.replicas.values()
        )


class TestVerify:
    def test_valid_solution_passes(self, paper_instance, appro_solution):
        verify_solution(paper_instance, appro_solution)

    def test_detects_over_k(self, paper_instance, appro_solution):
        replicas = dict(appro_solution.replicas)
        d_id = next(iter(replicas))
        replicas[d_id] = tuple(paper_instance.placement_nodes)  # way over K
        bad = _mutate(appro_solution, replicas=replicas)
        with pytest.raises(InvariantViolation, match="copies"):
            verify_solution(paper_instance, bad)

    def test_detects_lost_origin(self, paper_instance, appro_solution):
        replicas = dict(appro_solution.replicas)
        d_id = next(iter(replicas))
        origin = paper_instance.dataset(d_id).origin_node
        replicas[d_id] = tuple(v for v in replicas[d_id] if v != origin) or (
            paper_instance.placement_nodes[0]
            if paper_instance.placement_nodes[0] != origin
            else paper_instance.placement_nodes[1],
        )
        bad = _mutate(appro_solution, replicas=replicas)
        with pytest.raises(InvariantViolation, match="origin"):
            verify_solution(paper_instance, bad)

    def test_detects_assignment_without_replica(self, paper_instance, appro_solution):
        assignments = dict(appro_solution.assignments)
        (q_id, d_id), a = next(iter(assignments.items()))
        wrong_node = next(
            v
            for v in paper_instance.placement_nodes
            if v not in appro_solution.replicas[d_id]
        )
        assignments[(q_id, d_id)] = dataclasses.replace(a, node=wrong_node)
        bad = _mutate(appro_solution, assignments=assignments)
        with pytest.raises(InvariantViolation):
            verify_solution(paper_instance, bad)

    def test_detects_uncovered_query(self, paper_instance, appro_solution):
        admitted = set(appro_solution.admitted)
        rejected = set(appro_solution.rejected)
        moved = next(iter(rejected))
        rejected.remove(moved)
        bad = _mutate(
            appro_solution,
            admitted=frozenset(admitted),
            rejected=frozenset(rejected),
        )
        with pytest.raises(InvariantViolation, match="cover"):
            verify_solution(paper_instance, bad)

    def test_detects_admitted_without_full_coverage(
        self, paper_instance, appro_solution
    ):
        admitted = set(appro_solution.admitted)
        rejected = set(appro_solution.rejected)
        moved = next(iter(rejected))
        rejected.remove(moved)
        admitted.add(moved)  # admitted but has no assignments
        bad = _mutate(
            appro_solution,
            admitted=frozenset(admitted),
            rejected=frozenset(rejected),
        )
        with pytest.raises(InvariantViolation):
            verify_solution(paper_instance, bad)

    def test_detects_rejected_with_assignments(self, paper_instance, appro_solution):
        admitted = set(appro_solution.admitted)
        rejected = set(appro_solution.rejected)
        moved = next(iter(admitted))
        admitted.remove(moved)
        rejected.add(moved)
        bad = _mutate(
            appro_solution,
            admitted=frozenset(admitted),
            rejected=frozenset(rejected),
        )
        with pytest.raises(InvariantViolation, match="rejected"):
            verify_solution(paper_instance, bad)

    def test_detects_capacity_violation(self, paper_instance, appro_solution):
        assignments = dict(appro_solution.assignments)
        (key, a) = next(iter(assignments.items()))
        assignments[key] = dataclasses.replace(
            a, compute_ghz=a.compute_ghz + 10_000.0
        )
        bad = _mutate(appro_solution, assignments=assignments)
        with pytest.raises(InvariantViolation, match="capacity"):
            verify_solution(paper_instance, bad)

    def test_partial_mode_allows_subset(self, paper_instance, appro_solution):
        # Drop one assignment of a multi-dataset admitted query.
        victim = next(
            q_id
            for q_id in appro_solution.admitted
            if paper_instance.query(q_id).num_datasets > 1
        )
        assignments = {
            k: v
            for k, v in appro_solution.assignments.items()
            if k != (victim, paper_instance.query(victim).demanded[0])
        }
        partial = _mutate(appro_solution, assignments=assignments)
        with pytest.raises(InvariantViolation):
            verify_solution(paper_instance, partial, all_or_nothing=True)
        verify_solution(paper_instance, partial, all_or_nothing=False)
