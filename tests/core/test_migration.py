"""Tests for epoch-to-epoch replica migration."""

import pytest

from repro.core import MigrationPlanner, verify_solution
from repro.core.instance import ProblemInstance
from repro.topology.twotier import generate_two_tier
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.datasets import generate_datasets
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_queries


@pytest.fixture(scope="module")
def epochs():
    topology = generate_two_tier(seed=9)
    params = PaperDefaults()
    datasets = generate_datasets(topology, spawn_rng(9, "ds"), params, count=12)
    out = []
    for e in range(4):
        queries = generate_queries(
            topology, datasets, spawn_rng(9, f"q{e}"), params, count=50
        )
        out.append(
            ProblemInstance(
                topology=topology,
                datasets=datasets,
                queries=queries,
                max_replicas=3,
            )
        )
    return out


class TestPlannerBasics:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError):
            MigrationPlanner("random")

    def test_reports_verified_solutions(self, epochs):
        reports = MigrationPlanner("carry").run(epochs)
        assert len(reports) == len(epochs)
        for instance, report in zip(epochs, reports):
            verify_solution(instance, report.solution)

    def test_epoch0_identical_across_strategies(self, epochs):
        """No history yet: every strategy solves epoch 0 the same way."""
        vols = {
            s: MigrationPlanner(s).run(epochs[:1])[0].admitted_volume_gb
            for s in ("carry", "fresh", "frozen")
        }
        assert len(set(round(v, 6) for v in vols.values())) == 1

    def test_deterministic(self, epochs):
        r1 = MigrationPlanner("carry").run(epochs)
        r2 = MigrationPlanner("carry").run(epochs)
        assert [r.admitted_volume_gb for r in r1] == [
            r.admitted_volume_gb for r in r2
        ]

    def test_reset_forgets_history(self, epochs):
        planner = MigrationPlanner("carry")
        first = planner.plan_epoch(epochs[0])
        planner.reset()
        again = planner.plan_epoch(epochs[0])
        assert again.admitted_volume_gb == pytest.approx(
            first.admitted_volume_gb
        )
        assert again.kept == 0  # nothing carried after reset


class TestStrategySemantics:
    def test_fresh_never_carries(self, epochs):
        reports = MigrationPlanner("fresh").run(epochs)
        assert all(r.kept == 0 for r in reports)
        # Every epoch pays full seeding traffic.
        assert all(r.migration_gb > 0 for r in reports)

    def test_frozen_stops_migrating_after_epoch0(self, epochs):
        reports = MigrationPlanner("frozen").run(epochs)
        assert reports[0].migration_gb > 0
        assert all(r.migration_gb == 0 for r in reports[1:])
        assert all(r.added == 0 for r in reports[1:])
        assert all(r.dropped == 0 for r in reports)  # no GC when frozen

    def test_carry_migrates_less_than_fresh(self, epochs):
        carry = MigrationPlanner("carry").run(epochs)
        fresh = MigrationPlanner("fresh").run(epochs)
        carry_traffic = sum(r.migration_gb for r in carry[1:])
        fresh_traffic = sum(r.migration_gb for r in fresh[1:])
        assert carry_traffic < fresh_traffic

    def test_carry_serves_at_least_frozen(self, epochs):
        """Adapting to drift cannot lose to never adapting, on average."""
        carry = MigrationPlanner("carry").run(epochs)
        frozen = MigrationPlanner("frozen").run(epochs)
        assert sum(r.admitted_volume_gb for r in carry) >= sum(
            r.admitted_volume_gb for r in frozen
        )

    def test_migration_cost_consistent_with_volume(self, epochs):
        reports = MigrationPlanner("carry").run(epochs)
        for r in reports:
            if r.migration_gb == 0:
                assert r.migration_cost_s == 0.0
            else:
                assert r.migration_cost_s > 0.0
