"""Tests for epoch-to-epoch replica migration."""

import pytest

from repro.core import MigrationPlanner, verify_solution
from repro.core.instance import ProblemInstance
from repro.topology.twotier import generate_two_tier
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.datasets import generate_datasets
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_queries


@pytest.fixture(scope="module")
def epochs():
    topology = generate_two_tier(seed=9)
    params = PaperDefaults()
    datasets = generate_datasets(topology, spawn_rng(9, "ds"), params, count=12)
    out = []
    for e in range(4):
        queries = generate_queries(
            topology, datasets, spawn_rng(9, f"q{e}"), params, count=50
        )
        out.append(
            ProblemInstance(
                topology=topology,
                datasets=datasets,
                queries=queries,
                max_replicas=3,
            )
        )
    return out


class TestPlannerBasics:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError):
            MigrationPlanner("random")

    def test_reports_verified_solutions(self, epochs):
        reports = MigrationPlanner("carry").run(epochs)
        assert len(reports) == len(epochs)
        for instance, report in zip(epochs, reports):
            verify_solution(instance, report.solution)

    def test_epoch0_identical_across_strategies(self, epochs):
        """No history yet: every strategy solves epoch 0 the same way."""
        vols = {
            s: MigrationPlanner(s).run(epochs[:1])[0].admitted_volume_gb
            for s in ("carry", "fresh", "frozen")
        }
        assert len(set(round(v, 6) for v in vols.values())) == 1

    def test_deterministic(self, epochs):
        r1 = MigrationPlanner("carry").run(epochs)
        r2 = MigrationPlanner("carry").run(epochs)
        assert [r.admitted_volume_gb for r in r1] == [
            r.admitted_volume_gb for r in r2
        ]

    def test_reset_forgets_history(self, epochs):
        planner = MigrationPlanner("carry")
        first = planner.plan_epoch(epochs[0])
        planner.reset()
        again = planner.plan_epoch(epochs[0])
        assert again.admitted_volume_gb == pytest.approx(
            first.admitted_volume_gb
        )
        assert again.kept == 0  # nothing carried after reset


class TestStrategySemantics:
    def test_fresh_never_carries(self, epochs):
        reports = MigrationPlanner("fresh").run(epochs)
        assert all(r.kept == 0 for r in reports)
        # Every epoch pays full seeding traffic.
        assert all(r.migration_gb > 0 for r in reports)

    def test_frozen_stops_migrating_after_epoch0(self, epochs):
        reports = MigrationPlanner("frozen").run(epochs)
        assert reports[0].migration_gb > 0
        assert all(r.migration_gb == 0 for r in reports[1:])
        assert all(r.added == 0 for r in reports[1:])
        assert all(r.dropped == 0 for r in reports)  # no GC when frozen

    def test_carry_migrates_less_than_fresh(self, epochs):
        carry = MigrationPlanner("carry").run(epochs)
        fresh = MigrationPlanner("fresh").run(epochs)
        carry_traffic = sum(r.migration_gb for r in carry[1:])
        fresh_traffic = sum(r.migration_gb for r in fresh[1:])
        assert carry_traffic < fresh_traffic

    def test_carry_serves_at_least_frozen(self, epochs):
        """Adapting to drift cannot lose to never adapting, on average."""
        carry = MigrationPlanner("carry").run(epochs)
        frozen = MigrationPlanner("frozen").run(epochs)
        assert sum(r.admitted_volume_gb for r in carry) >= sum(
            r.admitted_volume_gb for r in frozen
        )

    def test_migration_cost_consistent_with_volume(self, epochs):
        reports = MigrationPlanner("carry").run(epochs)
        for r in reports:
            if r.migration_gb == 0:
                assert r.migration_cost_s == 0.0
            else:
                assert r.migration_cost_s > 0.0


# --------------------------------------------------------------------------
# Property suites: cross-strategy consistency + the bounded-churn diff.
# --------------------------------------------------------------------------

import functools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.migration import MigrationStep, diff_replica_maps
from repro.topology.twotier import TwoTierConfig

PROPERTY = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_SMALL = TwoTierConfig(
    num_data_centers=2, num_cloudlets=6, num_switches=2, num_base_stations=2
)


@functools.lru_cache(maxsize=64)
def _epoch_sequence(seed: int, n_epochs: int) -> tuple[ProblemInstance, ...]:
    topology = generate_two_tier(_SMALL, seed=seed)
    params = PaperDefaults()
    datasets = generate_datasets(topology, spawn_rng(seed, "ds"), params, count=6)
    return tuple(
        ProblemInstance(
            topology=topology,
            datasets=datasets,
            queries=generate_queries(
                topology, datasets, spawn_rng(seed, f"q{e}"), params, count=25
            ),
            max_replicas=3,
        )
        for e in range(n_epochs)
    )


@functools.lru_cache(maxsize=256)
def _strategy_reports(seed: int, n_epochs: int, strategy: str):
    return tuple(MigrationPlanner(strategy).run(list(_epoch_sequence(seed, n_epochs))))


sequences = st.tuples(st.integers(0, 30), st.integers(2, 4))


class TestCrossStrategyProperties:
    @PROPERTY
    @given(sequences)
    def test_migration_traffic_orders_across_strategies(self, seq):
        """Post-epoch-0 traffic: ``frozen <= carry <= fresh``, always."""
        seed, n = seq
        totals = {
            s: sum(r.migration_gb for r in _strategy_reports(seed, n, s)[1:])
            for s in ("frozen", "carry", "fresh")
        }
        assert totals["frozen"] == 0.0
        assert totals["frozen"] <= totals["carry"] <= totals["fresh"]

    @PROPERTY
    @given(sequences)
    def test_gcd_replicas_never_serve_their_final_epoch(self, seq):
        """A copy is GC'd only if it served *nothing* in that epoch."""
        seed, n = seq
        for report in _strategy_reports(seed, n, "carry"):
            served = {
                (d_id, a.node) for (_q, d_id), a in report.solution.assignments.items()
            }
            for dropped in report.dropped_replicas:
                assert dropped not in served

    @PROPERTY
    @given(sequences)
    def test_dropped_replicas_back_the_dropped_count(self, seq):
        seed, n = seq
        for strategy in ("carry", "fresh", "frozen"):
            for report in _strategy_reports(seed, n, strategy):
                assert len(report.dropped_replicas) == report.dropped
                if strategy != "carry":
                    assert report.dropped_replicas == ()

    @PROPERTY
    @given(sequences)
    def test_gcd_copies_leave_the_carried_map(self, seq):
        """After GC a copy is gone: it cannot serve the *next* epoch either."""
        seed, n = seq
        planner = MigrationPlanner("carry")
        for instance in _epoch_sequence(seed, n):
            report = planner.plan_epoch(instance)
            for d_id, node in report.dropped_replicas:
                assert node not in planner.carried[d_id]


# -- diff_replica_maps -----------------------------------------------------

DIFF_TOPOLOGY = generate_two_tier(_SMALL, seed=4)
DIFF_BASE = ProblemInstance(
    topology=DIFF_TOPOLOGY,
    datasets=generate_datasets(
        DIFF_TOPOLOGY, spawn_rng(4, "ds"), PaperDefaults(), count=8
    ),
    queries=(),
    max_replicas=3,
)
DIFF_PLACEMENT = sorted(DIFF_BASE.placement_nodes)


@st.composite
def replica_maps(draw):
    """(current, target): K-respecting maps that always include origins."""

    def one_map():
        out = {}
        for d_id in DIFF_BASE.datasets:
            origin = DIFF_BASE.dataset(d_id).origin_node
            extra = draw(
                st.lists(
                    st.sampled_from([v for v in DIFF_PLACEMENT if v != origin]),
                    max_size=DIFF_BASE.max_replicas - 1,
                    unique=True,
                )
            )
            out[d_id] = tuple(sorted({origin, *extra}))
        return out

    return one_map(), one_map()


DIFF_PROPERTY = settings(max_examples=50, deadline=None)


class TestDiffReplicaMaps:
    def test_rejects_bad_caps(self):
        with pytest.raises(ValidationError, match="max_migration_gb"):
            diff_replica_maps(DIFF_BASE, {}, {}, max_migration_gb=-1.0)
        with pytest.raises(ValidationError, match="max_moves_per_dataset"):
            diff_replica_maps(DIFF_BASE, {}, {}, max_moves_per_dataset=0)

    def test_identical_maps_diff_to_nothing(self):
        live = {d: (DIFF_BASE.dataset(d).origin_node,) for d in DIFF_BASE.datasets}
        plan = diff_replica_maps(DIFF_BASE, live, live)
        assert not plan
        assert plan.migration_gb == 0.0
        assert plan.deferred_steps == 0

    @DIFF_PROPERTY
    @given(replica_maps())
    def test_unbounded_plan_reaches_the_target(self, maps):
        """No caps: replaying the plan transforms current into target."""
        current, target = maps
        plan = diff_replica_maps(DIFF_BASE, current, target)
        assert plan.deferred_steps == 0
        reached = {d: set(nodes) for d, nodes in current.items()}
        for step in plan.steps:
            if step.drop_node is not None:
                reached[step.dataset_id].discard(step.drop_node)
            if step.add_node is not None:
                reached[step.dataset_id].add(step.add_node)
        assert reached == {d: set(nodes) for d, nodes in target.items()}

    @DIFF_PROPERTY
    @given(replica_maps(), st.floats(0.0, 60.0), st.integers(1, 4))
    def test_caps_are_respected(self, maps, cap, moves):
        current, target = maps
        plan = diff_replica_maps(
            DIFF_BASE, current, target,
            max_migration_gb=cap, max_moves_per_dataset=moves,
        )
        assert plan.migration_gb <= cap * (1.0 + 1e-9)
        mutations: dict[int, int] = {}
        for step in plan.steps:
            mutations[step.dataset_id] = (
                mutations.get(step.dataset_id, 0)
                + (step.add_node is not None)
                + (step.drop_node is not None)
            )
        assert all(count <= moves for count in mutations.values())

    @DIFF_PROPERTY
    @given(replica_maps(), st.floats(0.0, 60.0))
    def test_accounting_is_exact(self, maps, cap):
        """Planned + deferred adds exactly cover the adds the diff wants."""
        current, target = maps
        plan = diff_replica_maps(DIFF_BASE, current, target, max_migration_gb=cap)
        wanted = sum(
            len(set(target[d]) - set(current[d])) for d in DIFF_BASE.datasets
        )
        assert plan.adds + plan.deferred_steps == wanted
        assert plan.migration_gb == pytest.approx(
            sum(s.volume_gb for s in plan.steps if s.add_node is not None)
        )
        assert plan.migration_cost_s == pytest.approx(
            sum(s.ship_cost_s for s in plan.steps)
        )

    @DIFF_PROPERTY
    @given(replica_maps(), st.floats(0.0, 60.0), st.integers(1, 4))
    def test_origins_are_never_dropped(self, maps, cap, moves):
        current, target = maps
        plan = diff_replica_maps(
            DIFF_BASE, current, target,
            max_migration_gb=cap, max_moves_per_dataset=moves,
        )
        for step in plan.steps:
            if step.drop_node is not None:
                assert step.drop_node != DIFF_BASE.dataset(
                    step.dataset_id
                ).origin_node
            if step.add_node is not None:
                assert step.ship_from in {*current[step.dataset_id]}

    @DIFF_PROPERTY
    @given(replica_maps(), st.floats(0.0, 60.0), st.integers(1, 4))
    def test_diff_is_deterministic(self, maps, cap, moves):
        current, target = maps
        first = diff_replica_maps(
            DIFF_BASE, current, target,
            max_migration_gb=cap, max_moves_per_dataset=moves,
        )
        second = diff_replica_maps(
            DIFF_BASE, current, target,
            max_migration_gb=cap, max_moves_per_dataset=moves,
        )
        assert first == second

    @DIFF_PROPERTY
    @given(replica_maps())
    def test_no_bare_add_at_the_k_bound(self, maps):
        """A dataset at its K bound only gains copies via atomic moves."""
        current, target = maps
        plan = diff_replica_maps(DIFF_BASE, current, target)
        at_bound = {
            d
            for d in DIFF_BASE.datasets
            if len(current[d]) >= DIFF_BASE.max_replicas
        }
        for step in plan.steps:
            if step.add_node is not None and step.dataset_id in at_bound:
                assert step.is_move
