"""Tests for the online arrival session."""

import pytest

from repro.core import OnlineConfig, OnlineSession, appro_rule, greedy_rule
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.util.validation import ValidationError
from repro.workload.params import PaperDefaults


@pytest.fixture(scope="module")
def instance():
    return make_instance(TwoTierConfig(), PaperDefaults(), 3, 0)


class TestOnlineSession:
    def test_every_arrival_decided(self, instance):
        report = OnlineSession().run(instance, appro_rule)
        assert len(report.outcomes) == instance.num_queries
        assert {o.query_id for o in report.outcomes} == set(
            range(instance.num_queries)
        )

    def test_arrivals_in_time_order(self, instance):
        report = OnlineSession().run(instance, appro_rule)
        times = [o.arrival_s for o in report.outcomes]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_volume_consistent_with_outcomes(self, instance):
        report = OnlineSession().run(instance, appro_rule)
        assert report.admitted_volume_gb == pytest.approx(
            sum(o.volume_gb for o in report.outcomes if o.admitted)
        )
        assert report.throughput == pytest.approx(
            sum(1 for o in report.outcomes if o.admitted) / len(report.outcomes)
        )

    def test_deterministic(self, instance):
        cfg = OnlineConfig(seed=7)
        r1 = OnlineSession(cfg).run(instance, appro_rule)
        r2 = OnlineSession(cfg).run(instance, appro_rule)
        assert r1.outcomes == r2.outcomes

    def test_peak_allocation_positive_when_admitting(self, instance):
        report = OnlineSession().run(instance, appro_rule)
        if report.throughput > 0:
            assert report.peak_allocated_ghz > 0.0

    def test_appro_beats_greedy_online(self, instance):
        """Capacity churn rewards price-aware placement even more than the
        batch setting does."""
        va = vg = 0.0
        for seed in range(3):
            cfg = OnlineConfig(seed=seed)
            va += OnlineSession(cfg).run(instance, appro_rule).admitted_volume_gb
            vg += OnlineSession(cfg).run(instance, greedy_rule).admitted_volume_gb
        assert va > vg

    def test_churn_beats_batch_admission(self, instance):
        """With releases, the online session serves at least as much volume
        as the batch all-or-nothing solution on the same instance."""
        from repro.core import evaluate_solution, make_algorithm

        batch = evaluate_solution(
            instance, make_algorithm("appro-g").solve(instance)
        ).admitted_volume_gb
        # Slow arrivals → the cluster is nearly empty at each arrival.
        online = OnlineSession(OnlineConfig(mean_interarrival_s=10.0)).run(
            instance, appro_rule
        )
        assert online.admitted_volume_gb >= batch * 0.9

    def test_bad_config_rejected(self):
        with pytest.raises(ValidationError):
            OnlineConfig(mean_interarrival_s=0.0)
        with pytest.raises(ValidationError):
            OnlineConfig(hold_factor=0.0)


class TestNoFaultParity:
    """With faults disabled the session must be bit-identical to the
    pre-fault-layer behaviour — pinned against golden values captured
    before the fault subsystem landed."""

    def test_appro_golden_values(self, instance):
        report = OnlineSession(OnlineConfig(seed=7)).run(instance, appro_rule)
        assert report.faults is None
        assert report.admitted_volume_gb == 649.6883870602176
        assert report.throughput == 0.574468085106383
        assert report.peak_allocated_ghz == 68.3429133942284
        assert report.replicas_placed == 23
        first = report.outcomes[0]
        assert first.query_id == 0
        assert first.arrival_s == 0.10333573166295018
        assert first.admitted is True
        assert first.volume_gb == 12.965732248723615

    def test_greedy_golden_values(self, instance):
        report = OnlineSession(OnlineConfig(seed=7)).run(instance, greedy_rule)
        assert report.faults is None
        assert report.admitted_volume_gb == 111.93933170440027
        assert report.throughput == 0.11702127659574468
        assert report.replicas_placed == 19


class TestFaultSession:
    def _config(self, **kwargs):
        from repro.sim.faults import FaultConfig

        defaults = dict(
            mean_time_to_failure_s=1.0, mean_downtime_s=0.5, seed=11
        )
        defaults.update(kwargs)
        return OnlineConfig(seed=7, hold_factor=20.0, faults=FaultConfig(**defaults))

    def test_deterministic_with_faults(self, instance):
        cfg = self._config()
        r1 = OnlineSession(cfg).run(instance, appro_rule)
        r2 = OnlineSession(cfg).run(instance, appro_rule)
        assert r1 == r2  # full report: outcomes, fault schedule, metrics

    def test_fault_report_attached_and_consistent(self, instance):
        report = OnlineSession(self._config()).run(instance, appro_rule)
        faults = report.faults
        assert faults is not None
        assert faults.crashes == sum(
            1 for e in faults.schedule if e.kind == "crash"
        )
        assert 0.0 <= faults.time_weighted_availability <= 1.0
        assert faults.failovers_succeeded <= faults.failovers_attempted
        assert faults.queries_recovered + faults.queries_interrupted <= len(
            report.outcomes
        )
        assert faults.degraded_admitted <= faults.degraded_arrivals

    def test_fault_seed_changes_schedule_not_arrivals(self, instance):
        r1 = OnlineSession(self._config(seed=1)).run(instance, appro_rule)
        r2 = OnlineSession(self._config(seed=2)).run(instance, appro_rule)
        assert r1.faults.schedule != r2.faults.schedule
        assert [o.arrival_s for o in r1.outcomes] == [
            o.arrival_s for o in r2.outcomes
        ]

    def test_faults_hurt_admission(self, instance):
        clean = OnlineSession(OnlineConfig(seed=7, hold_factor=20.0)).run(
            instance, appro_rule
        )
        faulty = OnlineSession(self._config()).run(instance, appro_rule)
        assert faulty.admitted_volume_gb <= clean.admitted_volume_gb
