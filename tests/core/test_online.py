"""Tests for the online arrival session."""

import pytest

from repro.core import OnlineConfig, OnlineSession, appro_rule, greedy_rule
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.util.validation import ValidationError
from repro.workload.params import PaperDefaults


@pytest.fixture(scope="module")
def instance():
    return make_instance(TwoTierConfig(), PaperDefaults(), 3, 0)


class TestOnlineSession:
    def test_every_arrival_decided(self, instance):
        report = OnlineSession().run(instance, appro_rule)
        assert len(report.outcomes) == instance.num_queries
        assert {o.query_id for o in report.outcomes} == set(
            range(instance.num_queries)
        )

    def test_arrivals_in_time_order(self, instance):
        report = OnlineSession().run(instance, appro_rule)
        times = [o.arrival_s for o in report.outcomes]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_volume_consistent_with_outcomes(self, instance):
        report = OnlineSession().run(instance, appro_rule)
        assert report.admitted_volume_gb == pytest.approx(
            sum(o.volume_gb for o in report.outcomes if o.admitted)
        )
        assert report.throughput == pytest.approx(
            sum(1 for o in report.outcomes if o.admitted) / len(report.outcomes)
        )

    def test_deterministic(self, instance):
        cfg = OnlineConfig(seed=7)
        r1 = OnlineSession(cfg).run(instance, appro_rule)
        r2 = OnlineSession(cfg).run(instance, appro_rule)
        assert r1.outcomes == r2.outcomes

    def test_peak_allocation_positive_when_admitting(self, instance):
        report = OnlineSession().run(instance, appro_rule)
        if report.throughput > 0:
            assert report.peak_allocated_ghz > 0.0

    def test_appro_beats_greedy_online(self, instance):
        """Capacity churn rewards price-aware placement even more than the
        batch setting does."""
        va = vg = 0.0
        for seed in range(3):
            cfg = OnlineConfig(seed=seed)
            va += OnlineSession(cfg).run(instance, appro_rule).admitted_volume_gb
            vg += OnlineSession(cfg).run(instance, greedy_rule).admitted_volume_gb
        assert va > vg

    def test_churn_beats_batch_admission(self, instance):
        """With releases, the online session serves at least as much volume
        as the batch all-or-nothing solution on the same instance."""
        from repro.core import evaluate_solution, make_algorithm

        batch = evaluate_solution(
            instance, make_algorithm("appro-g").solve(instance)
        ).admitted_volume_gb
        # Slow arrivals → the cluster is nearly empty at each arrival.
        online = OnlineSession(OnlineConfig(mean_interarrival_s=10.0)).run(
            instance, appro_rule
        )
        assert online.admitted_volume_gb >= batch * 0.9

    def test_bad_config_rejected(self):
        with pytest.raises(ValidationError):
            OnlineConfig(mean_interarrival_s=0.0)
        with pytest.raises(ValidationError):
            OnlineConfig(hold_factor=0.0)
