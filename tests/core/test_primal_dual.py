"""Tests for the primal-dual algorithms Appro-S and Appro-G."""

import pytest

from repro.core import (
    ApproG,
    ApproS,
    PrimalDualConfig,
    evaluate_solution,
    solve_lp_relaxation,
    verify_solution,
)
from repro.core.duals import NodePrices
from repro.util.validation import ValidationError


class TestConfig:
    def test_defaults_valid(self):
        cfg = PrimalDualConfig()
        assert cfg.order == "density"
        assert cfg.capacity_pricing

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            PrimalDualConfig(order="random")

    def test_bad_theta_floor_rejected(self):
        with pytest.raises(Exception):
            PrimalDualConfig(theta_floor=1.0)


class TestApproS:
    def test_solves_and_verifies(self, special_instance):
        solution = ApproS().solve(special_instance)
        verify_solution(special_instance, solution)
        assert solution.algorithm == "appro-s"

    def test_rejects_general_instance(self, paper_instance):
        with pytest.raises(ValidationError, match="special case"):
            ApproS().solve(paper_instance)

    def test_deterministic(self, special_instance):
        s1 = ApproS().solve(special_instance)
        s2 = ApproS().solve(special_instance)
        assert s1.admitted == s2.admitted
        assert dict(s1.replicas) == dict(s2.replicas)

    def test_reports_dual_objective(self, special_instance):
        solution = ApproS().solve(special_instance)
        assert "dual_objective" in solution.extras
        metrics = evaluate_solution(special_instance, solution)
        # The dual certificate upper-bounds the primal objective.
        assert solution.extras["dual_objective"] >= metrics.admitted_volume_gb

    def test_all_admitted_have_deadline_met(self, special_instance):
        solution = ApproS().solve(special_instance)
        for a in solution.assignments.values():
            q = special_instance.query(a.query_id)
            assert a.latency_s <= q.deadline_s

    def test_instance_not_mutated(self, special_instance):
        before = [q.deadline_s for q in special_instance.queries]
        ApproS().solve(special_instance)
        assert [q.deadline_s for q in special_instance.queries] == before


class TestApproG:
    def test_solves_and_verifies(self, paper_instance):
        solution = ApproG().solve(paper_instance)
        verify_solution(paper_instance, solution)

    def test_all_or_nothing_semantics(self, paper_instance):
        solution = ApproG().solve(paper_instance)
        for q_id in solution.admitted:
            q = paper_instance.query(q_id)
            served = {d for (qq, d) in solution.assignments if qq == q_id}
            assert served == set(q.demanded)

    def test_partial_mode_serves_at_least_as_much(self, paper_instance):
        aon = evaluate_solution(
            paper_instance, ApproG().solve(paper_instance)
        ).admitted_volume_gb
        part_solution = ApproG(partial_admission=True).solve(paper_instance)
        verify_solution(paper_instance, part_solution, all_or_nothing=False)
        part = evaluate_solution(paper_instance, part_solution).admitted_volume_gb
        assert part >= aon - 1e-9

    def test_deterministic(self, paper_instance):
        s1 = ApproG().solve(paper_instance)
        s2 = ApproG().solve(paper_instance)
        assert s1.admitted == s2.admitted
        assert set(s1.assignments) == set(s2.assignments)

    def test_primal_below_lp_bound(self, tiny_instance):
        solution = ApproG(partial_admission=True).solve(tiny_instance)
        primal = evaluate_solution(tiny_instance, solution).admitted_volume_gb
        lp = solve_lp_relaxation(tiny_instance)
        assert primal <= lp.objective + 1e-6

    def test_handles_special_instance_too(self, special_instance):
        solution = ApproG().solve(special_instance)
        verify_solution(special_instance, solution)

    @pytest.mark.parametrize("order", ["density", "volume", "arrival"])
    def test_all_orders_valid(self, paper_instance, order):
        solution = ApproG(PrimalDualConfig(order=order)).solve(paper_instance)
        verify_solution(paper_instance, solution)

    def test_capacity_pricing_off_still_valid(self, paper_instance):
        cfg = PrimalDualConfig(capacity_pricing=False)
        solution = ApproG(cfg).solve(paper_instance)
        verify_solution(paper_instance, solution)

    def test_beta_zero_rejects_everything(self, paper_instance):
        cfg = PrimalDualConfig(beta=1e-9)
        solution = ApproG(cfg).solve(paper_instance)
        assert solution.num_admitted == 0

    def test_tiny_instance_full_admission(self, tiny_instance):
        """Generous deadlines + ample capacity ⇒ everything admitted."""
        solution = ApproG().solve(tiny_instance)
        assert solution.num_admitted == 3


class TestNodePrices:
    def test_idle_price_is_floor(self, tiny_instance):
        from repro.cluster.state import ClusterState

        state = ClusterState(tiny_instance)
        prices = NodePrices(theta_floor=0.02)
        v = tiny_instance.placement_nodes[0]
        assert prices.theta(state, v) == pytest.approx(0.02)

    def test_full_price_is_one(self, tiny_instance):
        from repro.cluster.state import ClusterState

        state = ClusterState(tiny_instance)
        prices = NodePrices(theta_floor=0.02)
        v = tiny_instance.placement_nodes[0]
        state.nodes[v].allocate("fill", state.nodes[v].available_ghz)
        assert prices.theta(state, v) == pytest.approx(1.0)

    def test_price_monotone_in_load(self, tiny_instance):
        from repro.cluster.state import ClusterState

        state = ClusterState(tiny_instance)
        prices = NodePrices()
        v = tiny_instance.placement_nodes[0]
        p0 = prices.theta(state, v)
        state.nodes[v].allocate("h", state.nodes[v].available_ghz / 2)
        p1 = prices.theta(state, v)
        assert p1 > p0
