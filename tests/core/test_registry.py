"""Tests for the algorithm registry and the SolutionBuilder contract."""

import pytest

from repro.cluster.state import ClusterState
from repro.core import available_algorithms, make_algorithm
from repro.core.base import SolutionBuilder
from repro.core.types import Assignment
from repro.util.validation import ValidationError


class TestRegistry:
    def test_all_paper_algorithms_present(self):
        names = available_algorithms()
        assert set(names) == {
            "appro-s",
            "appro-g",
            "greedy-s",
            "greedy-g",
            "graph-s",
            "graph-g",
            "popularity-s",
            "popularity-g",
            "lp-rounding-g",
            "appro-bw-g",
        }

    def test_factories_produce_named_instances(self):
        for name in available_algorithms():
            algo = make_algorithm(name)
            assert algo.name == name

    def test_factories_produce_fresh_instances(self):
        assert make_algorithm("appro-g") is not make_algorithm("appro-g")

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="appro-g"):
            make_algorithm("nope")


class TestSolutionBuilder:
    def _assignment(self, q, d):
        return Assignment(query_id=q, dataset_id=d, node=0, latency_s=0.1, compute_ghz=1.0)

    def test_double_decision_rejected(self, tiny_instance):
        builder = SolutionBuilder(tiny_instance, "t")
        builder.reject(0)
        with pytest.raises(ValidationError, match="twice"):
            builder.admit(0, [self._assignment(0, 0)])

    def test_admit_without_assignments_rejected(self, tiny_instance):
        builder = SolutionBuilder(tiny_instance, "t")
        with pytest.raises(ValidationError):
            builder.admit(0, [])

    def test_duplicate_pair_rejected(self, tiny_instance):
        builder = SolutionBuilder(tiny_instance, "t")
        builder.admit(0, [self._assignment(0, 0)])
        with pytest.raises(ValidationError, match="twice|assigned"):
            builder.admit(1, [self._assignment(0, 0)])

    def test_build_requires_all_queries_decided(self, tiny_instance):
        builder = SolutionBuilder(tiny_instance, "t")
        builder.reject(0)
        with pytest.raises(ValidationError, match="undecided"):
            builder.build(ClusterState(tiny_instance))

    def test_build_exports_replica_map(self, tiny_instance):
        builder = SolutionBuilder(tiny_instance, "t")
        for q in range(3):
            builder.reject(q)
        state = ClusterState(tiny_instance)
        solution = builder.build(state)
        assert dict(solution.replicas) == state.replicas.replica_map()
        assert solution.algorithm == "t"

    def test_extras_recorded(self, tiny_instance):
        builder = SolutionBuilder(tiny_instance, "t")
        builder.extra("foo", 1.5)
        for q in range(3):
            builder.reject(q)
        solution = builder.build(ClusterState(tiny_instance))
        assert solution.extras["foo"] == 1.5
