"""Tests for node failure and placement repair."""

import pytest

from repro.cluster.state import ClusterState
from repro.core import evaluate_solution, make_algorithm, verify_solution
from repro.core.feasibility import candidate_nodes
from repro.core.repair import best_failover_candidate, fail_nodes, repair_placement
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.util.validation import ValidationError
from repro.workload.params import PaperDefaults


@pytest.fixture(scope="module")
def placed():
    instance = make_instance(TwoTierConfig(), PaperDefaults(), 0, 0)
    solution = make_algorithm("appro-g").solve(instance)
    return instance, solution


def _loaded_nodes(solution, n=2):
    load: dict[int, float] = {}
    for a in solution.assignments.values():
        load[a.node] = load.get(a.node, 0.0) + a.compute_ghz
    return sorted(load, key=load.get, reverse=True)[:n]


class TestFailNodes:
    def test_impact_fields_consistent(self, placed):
        instance, solution = placed
        victims = _loaded_nodes(solution)
        impact = fail_nodes(instance, solution, victims)
        assert impact.failed_nodes == frozenset(victims)
        for q_id, d_id in impact.lost_pairs:
            assert solution.assignments[(q_id, d_id)].node in impact.failed_nodes
        assert impact.affected_queries == frozenset(
            q for q, _ in impact.lost_pairs
        )

    def test_failing_idle_node_breaks_nothing(self, placed):
        instance, solution = placed
        used = {a.node for a in solution.assignments.values()}
        replica_nodes = {v for reps in solution.replicas.values() for v in reps}
        idle = next(
            v
            for v in instance.placement_nodes
            if v not in used and v not in replica_nodes
        )
        impact = fail_nodes(instance, solution, [idle])
        assert not impact.lost_pairs
        assert not impact.affected_queries

    def test_non_placement_node_rejected(self, placed):
        instance, solution = placed
        switch = instance.topology.switches[0]
        with pytest.raises(ValidationError):
            fail_nodes(instance, solution, [switch])

    def test_orphan_detection(self, placed):
        instance, solution = placed
        # Failing every node orphans every dataset.
        impact = fail_nodes(instance, solution, instance.placement_nodes)
        assert impact.orphaned_datasets == frozenset(instance.datasets)


class TestRepair:
    def test_repaired_solution_is_valid(self, placed):
        instance, solution = placed
        impact = fail_nodes(instance, solution, _loaded_nodes(solution))
        report = repair_placement(instance, solution, impact)
        verify_solution(instance, report.solution)

    def test_no_assignment_on_failed_node(self, placed):
        instance, solution = placed
        impact = fail_nodes(instance, solution, _loaded_nodes(solution))
        report = repair_placement(instance, solution, impact)
        for a in report.solution.assignments.values():
            assert a.node not in impact.failed_nodes

    def test_availability_in_unit_interval(self, placed):
        instance, solution = placed
        impact = fail_nodes(instance, solution, _loaded_nodes(solution, 3))
        report = repair_placement(instance, solution, impact)
        assert 0.0 <= report.availability <= 1.0 + 1e-9

    def test_recovered_plus_dropped_covers_affected(self, placed):
        instance, solution = placed
        impact = fail_nodes(instance, solution, _loaded_nodes(solution))
        report = repair_placement(instance, solution, impact)
        assert (
            report.recovered_queries | report.dropped_queries
            == impact.affected_queries
        )
        assert not (report.recovered_queries & report.dropped_queries)

    def test_unaffected_queries_keep_service(self, placed):
        instance, solution = placed
        impact = fail_nodes(instance, solution, _loaded_nodes(solution))
        report = repair_placement(instance, solution, impact)
        unaffected = solution.admitted - impact.affected_queries
        assert unaffected <= report.solution.admitted

    def test_failing_nothing_changes_nothing(self, placed):
        instance, solution = placed
        impact = fail_nodes(instance, solution, [])
        report = repair_placement(instance, solution, impact)
        assert report.availability == pytest.approx(1.0)
        assert report.solution.admitted == solution.admitted

    def test_total_failure_drops_everything_served_there(self, placed):
        instance, solution = placed
        impact = fail_nodes(instance, solution, instance.placement_nodes)
        report = repair_placement(instance, solution, impact)
        # Every affected query is dropped (orphaned datasets everywhere).
        assert report.dropped_queries == impact.affected_queries
        assert report.recovered_queries == frozenset()

    def test_orphaned_dataset_drops_its_queries(self, placed):
        """Failing every node holding a dataset's copies orphans it; the
        queries served from it are unrecoverable and must be dropped."""
        instance, solution = placed
        (q_id, d_id), _ = next(iter(sorted(solution.assignments.items())))
        victims = sorted(solution.replicas[d_id])
        impact = fail_nodes(instance, solution, victims)
        assert d_id in impact.orphaned_datasets
        report = repair_placement(instance, solution, impact)
        orphan_queries = {q for (q, d) in impact.lost_pairs if d == d_id}
        assert q_id in orphan_queries
        assert orphan_queries <= report.dropped_queries
        verify_solution(instance, report.solution)

    def test_more_replicas_higher_availability(self):
        """The paper's availability claim: K buys failure resilience."""
        avail = {}
        for k in (1, 5):
            params = PaperDefaults().with_max_replicas(k)
            total = count = 0.0
            for seed in range(6):
                instance = make_instance(TwoTierConfig(), params, seed, 0)
                solution = make_algorithm("appro-g").solve(instance)
                if not solution.assignments:
                    continue
                victims = _loaded_nodes(solution, 2)
                impact = fail_nodes(instance, solution, victims)
                report = repair_placement(instance, solution, impact)
                total += report.availability
                count += 1
            avail[k] = total / count if count else 1.0
        assert avail[5] >= avail[1]


class TestBestFailoverCandidate:
    def test_picks_cheapest_feasible(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        best = best_failover_candidate(state, query, dataset)
        assert best is not None
        options = candidate_nodes(state, query, dataset)
        assert best.latency_s == min(c.latency_s for c in options)

    def test_excluded_nodes_skipped(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        best = best_failover_candidate(state, query, dataset)
        alt = best_failover_candidate(
            state, query, dataset, excluded=frozenset({best.node})
        )
        assert alt is None or alt.node != best.node

    def test_all_excluded_gives_none(self, tiny_instance):
        state = ClusterState(tiny_instance)
        assert (
            best_failover_candidate(
                state,
                tiny_instance.query(0),
                tiny_instance.dataset(0),
                excluded=frozenset(tiny_instance.placement_nodes),
            )
            is None
        )

    def test_orphaned_dataset_has_no_candidate(self, tiny_instance):
        state = ClusterState(tiny_instance)
        dataset = tiny_instance.dataset(0)
        state.mark_down(dataset.origin_node)  # the only copy is gone
        assert (
            best_failover_candidate(state, tiny_instance.query(0), dataset)
            is None
        )

    def test_surviving_replica_found_after_origin_crash(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        node = tiny_instance.placement_nodes[4]
        assignment = state.serve(query, dataset, node)  # clones a copy
        state.release(assignment)
        state.mark_down(dataset.origin_node)
        best = best_failover_candidate(state, query, dataset)
        assert best is not None
        assert state.is_up(best.node)
