"""Tests for the model datatypes."""

import pytest

from repro.core.types import Assignment, Dataset, PlacementSolution, Query
from repro.util.validation import ValidationError


class TestDataset:
    def test_valid(self):
        ds = Dataset(dataset_id=0, volume_gb=3.0, origin_node=5)
        assert ds.volume_gb == 3.0

    def test_zero_volume_rejected(self):
        with pytest.raises(ValidationError):
            Dataset(dataset_id=0, volume_gb=0.0, origin_node=5)

    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            Dataset(dataset_id=-1, volume_gb=1.0, origin_node=5)


class TestQuery:
    def _query(self, **kw):
        defaults = dict(
            query_id=0,
            home_node=1,
            demanded=(0, 1),
            selectivity=(0.5, 0.8),
            compute_rate=1.0,
            deadline_s=2.0,
        )
        defaults.update(kw)
        return Query(**defaults)

    def test_valid(self):
        q = self._query()
        assert q.num_datasets == 2

    def test_empty_demanded_rejected(self):
        with pytest.raises(ValidationError):
            self._query(demanded=(), selectivity=())

    def test_duplicate_demanded_rejected(self):
        with pytest.raises(ValidationError):
            self._query(demanded=(0, 0), selectivity=(0.5, 0.5))

    def test_selectivity_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            self._query(selectivity=(0.5,))

    def test_selectivity_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            self._query(selectivity=(0.5, 1.5))

    def test_alpha_for(self):
        q = self._query()
        assert q.alpha_for(0) == 0.5
        assert q.alpha_for(1) == 0.8

    def test_alpha_for_unknown_dataset(self):
        with pytest.raises(KeyError):
            self._query().alpha_for(99)

    def test_demanded_volume(self):
        q = self._query()
        datasets = {
            0: Dataset(dataset_id=0, volume_gb=2.0, origin_node=0),
            1: Dataset(dataset_id=1, volume_gb=3.5, origin_node=0),
        }
        assert q.demanded_volume(datasets) == pytest.approx(5.5)

    def test_zero_deadline_rejected(self):
        with pytest.raises(ValidationError):
            self._query(deadline_s=0.0)


class TestAssignment:
    def test_valid(self):
        a = Assignment(query_id=0, dataset_id=1, node=2, latency_s=0.5, compute_ghz=3.0)
        assert a.node == 2

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError):
            Assignment(query_id=0, dataset_id=1, node=2, latency_s=-0.1, compute_ghz=3.0)


class TestPlacementSolution:
    def _assignment(self, q=0, d=0, node=1):
        return Assignment(query_id=q, dataset_id=d, node=node, latency_s=0.1, compute_ghz=1.0)

    def test_valid(self):
        sol = PlacementSolution(
            algorithm="x",
            replicas={0: (1, 2)},
            assignments={(0, 0): self._assignment()},
            admitted=frozenset({0}),
            rejected=frozenset({1}),
        )
        assert sol.num_admitted == 1
        assert sol.replica_count(0) == 2
        assert sol.replica_count(9) == 0

    def test_overlap_rejected(self):
        with pytest.raises(ValidationError):
            PlacementSolution(
                algorithm="x",
                replicas={},
                assignments={},
                admitted=frozenset({0}),
                rejected=frozenset({0}),
            )

    def test_served_pairs(self):
        sol = PlacementSolution(
            algorithm="x",
            replicas={0: (1,), 1: (1,)},
            assignments={
                (0, 0): self._assignment(0, 0),
                (0, 1): self._assignment(0, 1),
                (2, 0): self._assignment(2, 0),
            },
            admitted=frozenset({0, 2}),
            rejected=frozenset(),
        )
        assert len(sol.served_pairs(0)) == 2
        assert len(sol.served_pairs(2)) == 1
        assert sol.served_pairs(5) == []

    def test_mappings_read_only(self):
        sol = PlacementSolution(
            algorithm="x",
            replicas={0: (1,)},
            assignments={},
            admitted=frozenset(),
            rejected=frozenset({0}),
        )
        with pytest.raises(TypeError):
            sol.replicas[1] = (2,)
