"""Vectorised-kernel parity tests.

The admission hot path was rewritten from per-node scalar loops to NumPy
array expressions.  These tests pin the contract that made that safe:
every vectorised quantity is *bit-identical* to the scalar computation it
replaced — same IEEE operations in the same order, evaluated elementwise.

Scalar references live either in the production code (``_Kernel.cost_rate``,
``ClusterState.pair_latency``, the networkx partition path) or inline here
as straight transliterations of the pre-vectorisation loops.
"""

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.core.duals import NodePrices
from repro.core.feasibility import (
    CandidateNode,
    candidate_nodes,
    candidate_set,
    pair_latency_vector,
)
from repro.core.graph_partition import partition_placement_nodes
from repro.core.metrics import evaluate_solution
from repro.core.primal_dual import PrimalDualConfig, _Kernel
from repro.core.registry import available_algorithms, make_algorithm
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

_TOPOLOGY = TwoTierConfig(
    num_data_centers=2,
    num_cloudlets=8,
    num_switches=2,
    num_base_stations=3,
)
_SEEDS = (11, 23, 47)


def _instance(seed, special=False, topology=None):
    params = PaperDefaults()
    if special:
        params = params.single_dataset()
    return make_instance(topology or _TOPOLOGY, params, seed, 0)


def _pairs(instance, limit=40):
    count = 0
    for query in instance.queries:
        for d_id in query.demanded:
            yield query, instance.dataset(d_id)
            count += 1
            if count >= limit:
                return


# -- latency vector ------------------------------------------------------


@pytest.mark.parametrize("seed", _SEEDS)
def test_latency_vector_matches_scalar(seed):
    instance = _instance(seed)
    state = ClusterState(instance)
    for query, dataset in _pairs(instance):
        vec = pair_latency_vector(state, query, dataset)
        for i, node in enumerate(instance.placement_nodes):
            assert vec[i] == state.pair_latency(query, dataset, node)


# -- candidate enumeration ----------------------------------------------


def _scalar_candidates(state, query, dataset):
    """Transliteration of the pre-vectorisation candidate loop."""
    out = []
    d_id = dataset.dataset_id
    demand = state.compute_demand(query, dataset)
    slots_left = state.replicas.remaining_slots(d_id) > 0
    for node in state.instance.placement_nodes:
        has_replica = state.replicas.has(d_id, node)
        if not has_replica and not slots_left:
            continue
        if not state.meets_deadline(query, dataset, node):
            continue
        if not state.nodes[node].can_fit(demand):
            continue
        out.append(
            CandidateNode(
                node=node,
                latency_s=state.pair_latency(query, dataset, node),
                has_replica=has_replica,
            )
        )
    return out


@pytest.mark.parametrize("seed", _SEEDS)
def test_candidate_set_matches_scalar_enumeration(seed):
    instance = _instance(seed)
    state = ClusterState(instance)
    for query, dataset in _pairs(instance):
        assert candidate_nodes(state, query, dataset) == _scalar_candidates(
            state, query, dataset
        )


def test_candidate_set_tracks_replica_and_capacity_state():
    """Parity must hold on *evolved* state, not just the initial one."""
    instance = _instance(_SEEDS[0])
    state = ClusterState(instance)
    for query in instance.queries:
        for d_id in query.demanded:
            dataset = instance.dataset(d_id)
            scalar = _scalar_candidates(state, query, dataset)
            assert candidate_nodes(state, query, dataset) == scalar
            for cand in scalar:
                if state.can_serve(query, dataset, cand.node):
                    state.serve(query, dataset, cand.node)
                    break


# -- cost vector ---------------------------------------------------------


@pytest.mark.parametrize("seed", _SEEDS)
@pytest.mark.parametrize("capacity_pricing", [True, False])
def test_cost_vector_matches_cost_rate(seed, capacity_pricing):
    instance = _instance(seed)
    config = PrimalDualConfig(capacity_pricing=capacity_pricing)
    kernel = _Kernel(config, instance)
    state = ClusterState(instance)
    for query, dataset in _pairs(instance):
        cands = candidate_set(state, query, dataset)
        if not cands:
            continue
        cost = kernel.cost_vector(state, query, cands, dataset.dataset_id)
        for i, cand in enumerate(candidate_nodes(state, query, dataset)):
            assert cost[i] == kernel.cost_rate(
                state, query, cand, dataset.dataset_id
            )
        # argmin parity with the scalar min(key=(cost, node)) rule
        best = kernel.argmin_candidate(cands, cost)
        scalar_best = min(
            range(len(cands)), key=lambda i: (cost[i], int(cands.nodes[i]))
        )
        assert best == scalar_best


def test_theta_array_matches_scalar_theta():
    instance = _instance(_SEEDS[0])
    state = ClusterState(instance)
    prices = NodePrices(theta_floor=0.05)
    # load a few nodes so utilisations differ
    for query, dataset in _pairs(instance, limit=10):
        for node in instance.placement_nodes:
            if state.can_serve(query, dataset, node):
                state.serve(query, dataset, node)
                break
    theta = prices.theta_array(state)
    for i, node in enumerate(instance.placement_nodes):
        assert theta[i] == prices.theta(state, node)


# -- graph partition -----------------------------------------------------


@pytest.mark.parametrize("seed", (0, 3, 9))
@pytest.mark.parametrize("size", (32, 60))
def test_fast_partition_matches_networkx(seed, size):
    instance = _instance(
        2019, topology=TwoTierConfig().scaled_to(size)
    )
    for num_parts in (2, 5, max(2, instance.num_placement_nodes // 8)):
        fast = partition_placement_nodes(instance, num_parts, seed)
        ref = partition_placement_nodes(
            instance, num_parts, seed, method="networkx"
        )
        assert fast == ref


def test_partition_rejects_unknown_method():
    instance = _instance(_SEEDS[0])
    with pytest.raises(ValueError, match="unknown partition method"):
        partition_placement_nodes(instance, 2, method="nope")


# -- whole-solution invariants ------------------------------------------


@pytest.mark.parametrize("name", available_algorithms())
def test_solutions_deterministic_across_runs(name):
    """The vectorised path is deterministic: two runs on the same instance
    produce bit-identical solutions and metrics."""
    special = name.endswith("-s")
    instance = _instance(_SEEDS[0], special=special)
    first = make_algorithm(name).solve(instance)
    second = make_algorithm(name).solve(instance)
    assert first.admitted == second.admitted
    assert first.rejected == second.rejected
    assert dict(first.replicas) == dict(second.replicas)
    assert dict(first.assignments) == dict(second.assignments)
    assert dict(first.extras) == dict(second.extras)
    assert evaluate_solution(instance, first) == evaluate_solution(
        instance, second
    )


def test_greedy_deadline_vector_matches_scalar():
    """The deadline mask greedy/popularity precompute equals per-node checks."""
    instance = _instance(_SEEDS[1])
    state = ClusterState(instance)
    node_index = instance.node_index
    for query, dataset in _pairs(instance):
        deadline_ok = pair_latency_vector(state, query, dataset) <= query.deadline_s
        for node in instance.placement_nodes:
            assert bool(deadline_ok[node_index[node]]) == state.meets_deadline(
                query, dataset, node
            )


def test_can_fit_mask_matches_scalar_can_fit():
    instance = _instance(_SEEDS[2])
    state = ClusterState(instance)
    demands = [0.0, 0.5, 4.0, 1e6]
    for demand in demands:
        mask = state.can_fit_mask(demand)
        for i, node in enumerate(instance.placement_nodes):
            assert bool(mask[i]) == state.nodes[node].can_fit(demand)
