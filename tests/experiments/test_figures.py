"""Tests for the figure reproducers (fast configurations)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    FIGURES,
    FigureSeries,
    figure4,
    figure5,
)

FAST = ExperimentConfig(repeats=2, seed=31)


class TestFigureSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FigureSeries(
                figure_id="x",
                title="t",
                x_label="x",
                x_values=(1, 2),
                volume={"a": (1.0,)},
                throughput={"a": (1.0, 2.0)},
            )

    def test_algorithms_property(self):
        series = FigureSeries(
            figure_id="x",
            title="t",
            x_label="x",
            x_values=(1,),
            volume={"a": (1.0,), "b": (2.0,)},
            throughput={"a": (0.1,), "b": (0.2,)},
        )
        assert series.algorithms == ("a", "b")


class TestFigure4:
    def test_structure(self):
        series = figure4(FAST)
        assert series.figure_id == "fig4"
        assert series.x_values == (1, 2, 3, 4, 5, 6)
        assert set(series.algorithms) == {"appro-g", "greedy-g", "graph-g"}

    def test_throughput_trend(self):
        series = figure4(FAST)
        t = series.throughput["appro-g"]
        assert t[0] > t[-1]  # F=1 easier than F=6

    def test_deterministic(self):
        s1 = figure4(FAST)
        s2 = figure4(FAST)
        assert s1.volume == s2.volume


class TestFigure5:
    def test_k_growth(self):
        series = figure5(FAST)
        v = series.volume["appro-g"]
        assert v[-1] > v[0]


class TestFiguresIndex:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {"fig2", "fig3", "fig4", "fig5", "fig7", "fig8"}

    def test_producers_callable(self):
        for producer in FIGURES.values():
            assert callable(producer)


class TestFigure2:
    def test_structure_and_special_case(self):
        from repro.experiments.figures import figure2, NETWORK_SIZES

        series = figure2(ExperimentConfig(repeats=1, seed=5))
        assert series.x_values == NETWORK_SIZES
        assert set(series.algorithms) == {"appro-s", "greedy-s", "graph-s"}
        for alg in series.algorithms:
            assert all(v >= 0 for v in series.volume[alg])
            assert all(0 <= t <= 1 for t in series.throughput[alg])


class TestFigure3:
    def test_general_case_algorithms(self):
        from repro.experiments.figures import figure3

        series = figure3(ExperimentConfig(repeats=1, seed=5))
        assert set(series.algorithms) == {"appro-g", "greedy-g", "graph-g"}


class TestTestbedFigures:
    def test_figure7_structure(self):
        from repro.experiments.figures import figure7

        series = figure7(ExperimentConfig(repeats=1, seed=5))
        assert series.x_values == (1, 2, 3, 4, 5, 6)
        assert set(series.algorithms) == {"appro-g", "popularity-g"}

    def test_figure8_structure(self):
        from repro.experiments.figures import figure8

        series = figure8(ExperimentConfig(repeats=1, seed=5))
        assert series.x_values == (1, 2, 3, 4, 5, 6, 7)
        v = series.volume["appro-g"]
        assert v[-1] >= v[0]
