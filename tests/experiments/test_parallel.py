"""Parallel experiment runner: serial/parallel equality and obs merging.

The contract under test (see ``docs/performance.md``): for any ``n_jobs``
the aggregated results of :func:`repro.experiments.runner.compare_algorithms`
are byte-for-byte identical — instances are rebuilt deterministically
inside workers and results are collected in repeat order.
"""

from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import _run_repeat, run_repeats
from repro.experiments.runner import (
    cached_instance,
    compare_algorithms,
    run_algorithm,
)
from repro.obs import MetricsRegistry, use_registry
from repro.topology.twotier import TwoTierConfig
from repro.util.validation import ValidationError
from repro.workload.params import PaperDefaults

_TOPOLOGY = TwoTierConfig(
    num_data_centers=2,
    num_cloudlets=6,
    num_switches=2,
    num_base_stations=2,
)
_NAMES = ["appro-g", "greedy-g"]


def _config(**kw):
    kw.setdefault("repeats", 3)
    kw.setdefault("topology", _TOPOLOGY)
    return ExperimentConfig(**kw)


def test_n_jobs_validated():
    with pytest.raises(ValidationError):
        ExperimentConfig(n_jobs=0)
    with pytest.raises(ValidationError):
        ExperimentConfig(n_jobs=-2)


def test_parallel_equals_serial():
    config = _config()
    serial = compare_algorithms(_NAMES, config)
    parallel = compare_algorithms(_NAMES, replace(config, n_jobs=2))
    assert parallel == serial


def test_n_jobs_one_uses_in_process_loop():
    config = _config()
    assert compare_algorithms(_NAMES, replace(config, n_jobs=1)) == (
        compare_algorithms(_NAMES, config)
    )


def test_run_algorithm_matches_compare():
    config = _config()
    assert run_algorithm("appro-g", config) == (
        compare_algorithms(["appro-g"], config)["appro-g"]
    )


def test_run_repeats_orders_results_by_repeat():
    out = run_repeats(
        ["greedy-g"], _TOPOLOGY, PaperDefaults(), 2019, 4, 2
    )
    volumes, throughputs = out["greedy-g"]
    assert len(volumes) == len(throughputs) == 4
    # repeat order, not completion order: equal to in-process per-repeat runs
    expected = [
        _run_repeat(["greedy-g"], _TOPOLOGY, PaperDefaults(), 2019, r, False)[1][
            "greedy-g"
        ]
        for r in range(4)
    ]
    assert volumes == [e[0] for e in expected]
    assert throughputs == [e[1] for e in expected]


def test_worker_metrics_merge_into_parent():
    config = _config(n_jobs=2)
    registry = MetricsRegistry()
    with use_registry(registry):
        compare_algorithms(_NAMES, config)
    # every repeat's admissions landed in the parent registry
    admitted = registry.counter("algo.appro-g.admitted")
    rejected = registry.counter("algo.appro-g.rejected")
    assert admitted + rejected > 0
    summary = registry.summary("algo.appro-g.admission_s")
    assert summary is not None and summary.count > 0
    assert summary.min <= summary.max


def test_no_observability_cost_when_disabled():
    out = _run_repeat(["greedy-g"], _TOPOLOGY, PaperDefaults(), 7, 0, False)
    assert out[2] is None
    out = _run_repeat(["greedy-g"], _TOPOLOGY, PaperDefaults(), 7, 0, True)
    assert isinstance(out[2], dict)


def test_instance_cache_reuses_objects():
    a = cached_instance(_TOPOLOGY, PaperDefaults(), 5, 0)
    b = cached_instance(_TOPOLOGY, PaperDefaults(), 5, 0)
    assert a is b
    c = cached_instance(_TOPOLOGY, PaperDefaults(), 5, 1)
    assert c is not a


def test_snapshot_merge_roundtrip():
    source = MetricsRegistry()
    source.inc("x", 2.0)
    source.set_gauge("g", 1.5)
    source.observe("s", 1.0)
    source.observe("s", 3.0)
    with source.span("work", kind="test"):
        pass
    target = MetricsRegistry()
    target.inc("x", 1.0)
    target.merge_snapshot(source.snapshot())
    assert target.counter("x") == 3.0
    assert target.gauges["g"] == 1.5
    merged = target.summary("s")
    assert merged.count == 2 and merged.total == 4.0
    assert merged.min == 1.0 and merged.max == 3.0
    assert [s.name for s in target.find_spans()] == ["work"]
