"""Tests for terminal chart rendering."""

import pytest

from repro.experiments.figures import FigureSeries
from repro.experiments.plots import bar_chart, plot_figure
from repro.util.validation import ValidationError


def _series() -> FigureSeries:
    return FigureSeries(
        figure_id="figX",
        title="demo",
        x_label="K",
        x_values=(1, 2),
        volume={"appro-g": (10.0, 30.0), "greedy-g": (5.0, 6.0)},
        throughput={"appro-g": (0.2, 0.6), "greedy-g": (0.1, 0.12)},
    )


class TestBarChart:
    def test_max_value_fills_width(self):
        chart = bar_chart("t", {"a": 2.0, "b": 1.0}, width=10)
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert lines[1].count("█") == 10
        assert 4 <= lines[2].count("█") <= 6

    def test_values_printed(self):
        chart = bar_chart("t", {"a": 2.0}, fmt=".2f")
        assert "2.00" in chart

    def test_zero_values_render(self):
        chart = bar_chart("t", {"a": 0.0, "b": 0.0})
        assert "a" in chart and "b" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            bar_chart("t", {})

    def test_bad_width_rejected(self):
        with pytest.raises(Exception):
            bar_chart("t", {"a": 1.0}, width=0)


class TestPlotFigure:
    def test_contains_all_groups_and_algorithms(self):
        text = plot_figure(_series())
        assert "K = 1" in text and "K = 2" in text
        assert text.count("appro-g") == 4  # 2 panels × 2 x-values
        assert "figX(a)" in text and "figX(b)" in text

    def test_bars_scale_across_panel(self):
        text = plot_figure(_series(), width=20)
        lines = [l for l in text.splitlines() if "appro-g" in l]
        # The volume-30 bar (panel a, K=2) is the longest appro bar.
        blocks = [l.count("█") for l in lines]
        assert max(blocks) == blocks[1]

    def test_values_rendered(self):
        text = plot_figure(_series())
        assert "30.0" in text
        assert "0.600" in text
