"""Tests for report assembly."""

import pytest

from repro.experiments.report import RESULT_SECTIONS, build_report
from repro.util.validation import ValidationError


class TestBuildReport:
    def test_known_sections_titled_and_ordered(self, tmp_path):
        (tmp_path / "fig5.txt").write_text("K table\n")
        (tmp_path / "fig2.txt").write_text("size table\n")
        report = build_report(tmp_path)
        assert "## Fig. 2" in report and "## Fig. 5" in report
        assert report.index("## Fig. 2") < report.index("## Fig. 5")
        assert "K table" in report

    def test_unknown_files_appended(self, tmp_path):
        (tmp_path / "custom_thing.txt").write_text("x\n")
        report = build_report(tmp_path)
        assert "## custom_thing" in report

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="bench"):
            build_report(tmp_path)

    def test_section_stems_unique(self):
        stems = [s for s, _ in RESULT_SECTIONS]
        assert len(stems) == len(set(stems))

    def test_tables_fenced(self, tmp_path):
        (tmp_path / "fig4.txt").write_text("body\n")
        report = build_report(tmp_path)
        assert report.count("```") % 2 == 0
