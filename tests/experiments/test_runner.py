"""Tests for the experiment runner."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    compare_algorithms,
    make_instance,
    run_algorithm,
)
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

FAST = ExperimentConfig(repeats=3, seed=99)


class TestMakeInstance:
    def test_deterministic(self):
        i1 = make_instance(TwoTierConfig(), PaperDefaults(), 5, 0)
        i2 = make_instance(TwoTierConfig(), PaperDefaults(), 5, 0)
        assert i1.num_queries == i2.num_queries
        assert [q.deadline_s for q in i1.queries] == [
            q.deadline_s for q in i2.queries
        ]

    def test_repeats_differ(self):
        i1 = make_instance(TwoTierConfig(), PaperDefaults(), 5, 0)
        i2 = make_instance(TwoTierConfig(), PaperDefaults(), 5, 1)
        assert (
            i1.num_queries != i2.num_queries
            or i1.topology.link_delays != i2.topology.link_delays
        )

    def test_params_change_keeps_topology(self):
        i1 = make_instance(TwoTierConfig(), PaperDefaults(), 5, 0)
        i2 = make_instance(
            TwoTierConfig(), PaperDefaults().with_max_replicas(7), 5, 0
        )
        assert i1.topology.link_delays == i2.topology.link_delays
        assert i2.max_replicas == 7


class TestRunAlgorithm:
    def test_aggregates(self):
        result = run_algorithm("appro-g", FAST)
        assert result.repeats == 3
        assert result.volume_mean > 0
        assert 0.0 <= result.throughput_mean <= 1.0
        assert result.volume_std >= 0.0

    def test_deterministic(self):
        r1 = run_algorithm("appro-g", FAST)
        r2 = run_algorithm("appro-g", FAST)
        assert r1.volume_mean == pytest.approx(r2.volume_mean)


class TestCompareAlgorithms:
    def test_paired_instances(self):
        results = compare_algorithms(["appro-g", "greedy-g"], FAST)
        assert set(results) == {"appro-g", "greedy-g"}
        # On the calibrated default regime Appro wins on average.
        assert results["appro-g"].volume_mean >= results["greedy-g"].volume_mean

    def test_param_override(self):
        base = compare_algorithms(["appro-g"], FAST)
        wide = compare_algorithms(
            ["appro-g"], FAST, params=PaperDefaults().with_max_replicas(7)
        )
        assert wide["appro-g"].volume_mean >= base["appro-g"].volume_mean
