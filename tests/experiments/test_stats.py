"""Tests for the statistics helpers."""

import pytest

from repro.experiments.stats import (
    ConfidenceInterval,
    mean_ci,
    paired_ratio_ci,
    paired_test,
)
from repro.util.validation import ValidationError


class TestMeanCi:
    def test_contains_mean(self):
        ci = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.low <= 2.5 <= ci.high
        assert ci.estimate == pytest.approx(2.5)

    def test_single_sample_degenerate(self):
        ci = mean_ci([5.0])
        assert ci.low == ci.high == ci.estimate == 5.0

    def test_constant_samples_degenerate(self):
        ci = mean_ci([3.0, 3.0, 3.0])
        assert ci.half_width == 0.0

    def test_large_magnitude_variance_detected(self):
        """Regression: ``np.allclose(arr, mean)`` (default rtol 1e-5)
        treated large-magnitude samples with real spread as constant and
        silently returned a zero-width interval."""
        ci = mean_ci([1e6 - 5.0, 1e6, 1e6 + 5.0])
        assert ci.estimate == pytest.approx(1e6)
        assert ci.half_width > 0.0
        assert ci.low < 1e6 < ci.high

    def test_large_magnitude_constant_still_degenerate(self):
        ci = mean_ci([1e12, 1e12, 1e12])
        assert ci.half_width == 0.0

    def test_higher_confidence_wider(self):
        data = [1.0, 2.5, 2.0, 4.0, 3.0, 1.5]
        assert mean_ci(data, 0.99).half_width > mean_ci(data, 0.8).half_width

    def test_more_samples_tighter(self):
        few = mean_ci([1.0, 3.0, 2.0, 4.0])
        many = mean_ci([1.0, 3.0, 2.0, 4.0] * 10)
        assert many.half_width < few.half_width

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            mean_ci([])

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValidationError):
            ConfidenceInterval(5.0, 6.0, 7.0, 0.95)


class TestPairedRatioCi:
    def test_point_estimate(self):
        ci = paired_ratio_ci([2.0, 4.0, 6.0], [1.0, 2.0, 3.0])
        assert ci.estimate == pytest.approx(2.0)
        assert ci.low <= 2.0 <= ci.high

    def test_deterministic(self):
        a = [3.0, 5.0, 4.0, 6.0]
        b = [1.0, 2.0, 2.0, 3.0]
        c1 = paired_ratio_ci(a, b, seed=1)
        c2 = paired_ratio_ci(a, b, seed=1)
        assert (c1.low, c1.high) == (c2.low, c2.high)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            paired_ratio_ci([1.0], [1.0, 2.0])

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValidationError):
            paired_ratio_ci([1.0, 2.0], [1.0, -1.0])

    def test_noisy_ratio_interval_reasonable(self):
        import numpy as np

        rng = np.random.default_rng(0)
        base = rng.uniform(50, 150, size=30)
        a = base * 2.0 + rng.normal(0, 5, size=30)
        ci = paired_ratio_ci(list(a), list(base))
        assert 1.8 < ci.estimate < 2.2
        assert ci.low > 1.5 and ci.high < 2.5


class TestPairedTest:
    def test_clear_winner_small_p(self):
        a = [10.0, 12.0, 11.0, 13.0, 12.5]
        b = [5.0, 6.0, 5.5, 6.5, 6.0]
        diff, p = paired_test(a, b)
        assert diff > 0
        assert p < 0.01

    def test_identical_series_neutral(self):
        diff, p = paired_test([1.0, 2.0], [1.0, 2.0])
        assert diff == 0.0
        assert p == 0.5

    def test_loser_large_p(self):
        _, p = paired_test([1.0, 2.2, 1.5], [5.0, 6.1, 5.4])
        assert p > 0.9

    def test_mismatched_rejected(self):
        with pytest.raises(ValidationError):
            paired_test([1.0], [])


class TestOnRealExperiment:
    def test_appro_beats_greedy_significantly(self):
        """The paper's headline comparison passes a significance test."""
        from repro.core import evaluate_solution, make_algorithm
        from repro.experiments.runner import make_instance
        from repro.topology.twotier import TwoTierConfig
        from repro.workload.params import PaperDefaults

        appro, greedy = [], []
        for seed in range(10):
            instance = make_instance(TwoTierConfig(), PaperDefaults(), seed, 0)
            appro.append(
                evaluate_solution(
                    instance, make_algorithm("appro-g").solve(instance)
                ).admitted_volume_gb
            )
            greedy.append(
                evaluate_solution(
                    instance, make_algorithm("greedy-g").solve(instance)
                ).admitted_volume_gb
            )
        diff, p = paired_test(appro, greedy)
        assert diff > 0
        assert p < 0.01
        ratio = paired_ratio_ci(appro, greedy)
        assert ratio.low > 1.0  # the whole CI sits above parity
