"""Tests for text-table rendering."""

from repro.experiments.figures import FigureSeries
from repro.experiments.runner import AggregateMetrics
from repro.experiments.tables import render_comparison, render_figure


def _series() -> FigureSeries:
    return FigureSeries(
        figure_id="fig9",
        title="demo",
        x_label="K",
        x_values=(1, 2, 3),
        volume={"appro-g": (10.0, 20.0, 30.0), "greedy-g": (5.0, 6.0, 7.0)},
        throughput={"appro-g": (0.1, 0.2, 0.3), "greedy-g": (0.05, 0.06, 0.07)},
    )


class TestRenderFigure:
    def test_contains_both_panels(self):
        text = render_figure(_series())
        assert "fig9(a)" in text
        assert "fig9(b)" in text

    def test_contains_all_algorithms_and_values(self):
        text = render_figure(_series())
        assert "appro-g" in text and "greedy-g" in text
        assert "30.0" in text
        assert "0.300" in text

    def test_x_label_mentioned(self):
        assert "(x-axis: K)" in render_figure(_series())

    def test_rows_aligned(self):
        text = render_figure(_series())
        panel_a = [
            line
            for line in text.splitlines()
            if line.startswith(("appro-g", "greedy-g"))
        ]
        widths = {len(line) for line in panel_a}
        assert len(widths) <= 2  # per-panel alignment


class TestRenderComparison:
    def test_contains_means_and_stds(self):
        results = {
            "appro-g": AggregateMetrics("appro-g", 100.0, 5.0, 0.5, 0.02, 15),
            "greedy-g": AggregateMetrics("greedy-g", 40.0, 3.0, 0.2, 0.01, 15),
        }
        text = render_comparison(results)
        assert "100.0" in text
        assert "±" in text
        assert "(15)" in text
