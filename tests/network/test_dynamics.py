"""Tests for the dynamic network layer (schedules, link state, recompute).

The Hypothesis suites here pin the two contracts the rest of the system
leans on:

* **Incremental = from-scratch** — after *any* link-event sequence, the
  epoch-stamped :meth:`PathCache.recompute` tables are bit-identical to
  a fresh :class:`PathCache` built on a topology holding exactly the
  mutated link table (CSR adjacency is canonical in the edge set, and
  dijkstra is deterministic on it).
* **No severed serving paths** — after eviction of unreachable pairs,
  :meth:`ClusterState.check_invariants` holds under any link-event
  schedule; without eviction it raises the moment a pair's home is cut
  off.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.state import ClusterState
from repro.core.instance import ProblemInstance
from repro.core.metrics import InvariantViolation
from repro.core.types import Dataset, Query
from repro.network.dynamics import (
    LinkEvent,
    LinkFaultConfig,
    LinkState,
    build_link_schedule,
)
from repro.network.paths import PathCache
from repro.network.routing import extract_path
from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.twotier import EdgeCloudTopology
from repro.util.validation import ValidationError


def _mesh_topology() -> EdgeCloudTopology:
    """5 cloudlets, ring + one chord: survives several link cuts."""
    specs = [
        NodeSpec(i, NodeKind.CLOUDLET, f"cl{i}", 8.0, 0.05) for i in range(5)
    ]
    links = {
        (0, 1): 0.10,
        (1, 2): 0.20,
        (2, 3): 0.15,
        (3, 4): 0.25,
        (0, 4): 0.30,
        (1, 3): 0.40,
    }
    return EdgeCloudTopology(specs, links)


class TestConfigValidation:
    def test_bad_inflation(self):
        with pytest.raises(ValidationError, match="inflation"):
            LinkFaultConfig(inflation=1.0)

    def test_bad_partition_prob(self):
        with pytest.raises(ValidationError, match="partition_prob"):
            LinkFaultConfig(partition_prob=1.5)

    def test_bad_min_up_links(self):
        with pytest.raises(ValidationError, match="min_up_links"):
            LinkFaultConfig(min_up_links=0)

    def test_bad_max_events(self):
        with pytest.raises(ValidationError, match="max_events"):
            LinkFaultConfig(max_events=-1)


class TestSchedule:
    def test_deterministic(self):
        topo = _mesh_topology()
        config = LinkFaultConfig(mean_time_to_event_s=1.0, seed=7)
        first = build_link_schedule(topo, 50.0, config)
        second = build_link_schedule(topo, 50.0, config)
        assert first == second
        assert len(first) > 0

    def test_seed_changes_schedule(self):
        topo = _mesh_topology()
        a = build_link_schedule(topo, 50.0, LinkFaultConfig(seed=1))
        b = build_link_schedule(topo, 50.0, LinkFaultConfig(seed=2))
        assert a != b

    def test_sorted_and_paired(self):
        topo = _mesh_topology()
        schedule = build_link_schedule(
            topo, 80.0, LinkFaultConfig(mean_time_to_event_s=1.0, seed=3)
        )
        times = [e.time for e in schedule]
        assert times == sorted(times)
        faults = sum(1 for e in schedule if e.kind in ("degrade", "sever"))
        restores = sum(1 for e in schedule if e.kind == "restore")
        assert faults == restores  # every fault carries its repair

    def test_max_events_caps_faults(self):
        topo = _mesh_topology()
        schedule = build_link_schedule(
            topo,
            500.0,
            LinkFaultConfig(
                mean_time_to_event_s=1.0, partition_prob=0.0, seed=5, max_events=4
            ),
        )
        faults = [e for e in schedule if e.kind != "restore"]
        assert len(faults) == 4

    def test_partitions_cut_whole_node(self):
        topo = _mesh_topology()
        schedule = build_link_schedule(
            topo,
            200.0,
            LinkFaultConfig(
                mean_time_to_event_s=1.0,
                degrade_fraction=0.0,
                partition_prob=1.0,
                seed=11,
            ),
        )
        severs = [e for e in schedule if e.kind == "sever"]
        assert severs and all(e.correlated for e in severs)
        by_time: dict[float, list[LinkEvent]] = {}
        for e in severs:
            by_time.setdefault(e.time, []).append(e)
        for group in by_time.values():
            common = set(group[0].link)
            for e in group[1:]:
                common &= set(e.link)
            assert common  # all cut links share the victim node

    def test_min_up_links_never_empties_graph(self):
        topo = _mesh_topology()
        schedule = build_link_schedule(
            topo,
            300.0,
            LinkFaultConfig(
                mean_time_to_event_s=0.2,
                mean_repair_s=50.0,
                degrade_fraction=0.0,
                partition_prob=0.5,
                seed=13,
                min_up_links=2,
            ),
        )
        state = LinkState(topo)
        for event in schedule:
            _apply(state, event, inflation=4.0)
            assert state.num_links - len(state.severed_links()) >= 2


def _apply(state: LinkState, event: LinkEvent, inflation: float) -> None:
    if event.kind == "degrade":
        state.degrade(event.link, inflation)
    elif event.kind == "sever":
        state.sever(event.link)
    else:
        state.restore(event.link)


class TestLinkState:
    def test_overlay_semantics(self):
        topo = _mesh_topology()
        state = LinkState(topo)
        assert state.effective_delays() == topo.link_delays
        state.degrade((0, 1), 4.0)
        state.sever((2, 3))
        effective = state.effective_delays()
        assert effective[(0, 1)] == pytest.approx(0.4)
        assert (2, 3) not in effective
        assert state.inflation_of(1, 0) == 4.0
        assert state.is_severed(3, 2)
        assert state.active_faults == 2
        assert state.link_availability() == pytest.approx(1.0 - 1 / 6)
        state.restore_all()
        assert state.effective_delays() == topo.link_delays
        assert state.active_faults == 0

    def test_unknown_link_rejected(self):
        state = LinkState(_mesh_topology())
        with pytest.raises(KeyError):
            state.sever((0, 2))

    def test_restore_is_idempotent(self):
        state = LinkState(_mesh_topology())
        state.restore((0, 1))
        state.sever((0, 1))
        state.restore((0, 1))
        state.restore((0, 1))
        assert state.active_faults == 0


class TestIncrementalRecomputeProperty:
    """Satellite: incremental recompute == from-scratch, bit for bit."""

    @given(seed=st.integers(0, 1000), prefix=st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_recompute_matches_fresh_cache(self, seed, prefix):
        topo = _mesh_topology()
        schedule = build_link_schedule(
            topo, 30.0, LinkFaultConfig(
                mean_time_to_event_s=0.5,
                mean_repair_s=2.0,
                degrade_fraction=0.4,
                partition_prob=0.3,
                seed=seed,
            )
        )
        state = LinkState(topo)
        cache = PathCache(topo)
        for event in schedule[:prefix]:
            _apply(state, event, inflation=4.0)
            cache.recompute(state.effective_delays())
        fresh = PathCache(
            EdgeCloudTopology(list(topo.nodes), dict(state.effective_delays()))
        )
        # Bitwise equality, inf-safe: identical CSR + dijkstra on both sides.
        assert np.array_equal(cache.delays_matrix(), fresh.delays_matrix())
        assert cache.generation == min(prefix, len(schedule))

    @given(seed=st.integers(0, 1000), prefix=st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_recomputed_paths_avoid_severed_links(self, seed, prefix):
        topo = _mesh_topology()
        schedule = build_link_schedule(
            topo, 30.0, LinkFaultConfig(
                mean_time_to_event_s=0.5,
                mean_repair_s=2.0,
                degrade_fraction=0.2,
                partition_prob=0.4,
                seed=seed,
            )
        )
        state = LinkState(topo)
        cache = PathCache(topo)
        for event in schedule[:prefix]:
            _apply(state, event, inflation=4.0)
        cache.recompute(state.effective_delays())
        n = topo.num_nodes
        for u in range(n):
            for v in range(n):
                if u == v or not cache.reachable(u, v):
                    continue
                path = extract_path(cache, u, v)
                for a, b in zip(path, path[1:]):
                    assert not state.is_severed(a, b)


def _tiny_instance() -> ProblemInstance:
    """Fresh 5-node instance per example — recompute mutates the cache."""
    topo = _mesh_topology()
    datasets = {
        0: Dataset(dataset_id=0, volume_gb=2.0, origin_node=0, name="S0"),
        1: Dataset(dataset_id=1, volume_gb=1.0, origin_node=2, name="S1"),
    }
    queries = [
        Query(
            query_id=0,
            home_node=4,
            demanded=(0,),
            selectivity=(0.5,),
            compute_rate=1.0,
            deadline_s=100.0,
        ),
        Query(
            query_id=1,
            home_node=1,
            demanded=(1,),
            selectivity=(0.5,),
            compute_rate=1.0,
            deadline_s=100.0,
        ),
    ]
    return ProblemInstance(
        topology=topo, datasets=datasets, queries=queries, max_replicas=2
    )


class TestSeveredPathInvariantProperty:
    """Acceptance: no admitted query is ever served over a severed link."""

    @given(seed=st.integers(0, 500), prefix=st.integers(0, 40))
    @settings(max_examples=30, deadline=None)
    def test_invariant_after_eviction(self, seed, prefix):
        instance = _tiny_instance()
        state = ClusterState(instance)
        inflight = [
            state.serve(instance.queries[0], instance.dataset(0), 0),
            state.serve(instance.queries[1], instance.dataset(1), 2),
        ]
        homes = {q.query_id: q.home_node for q in instance.queries}
        links = LinkState(instance.topology)
        schedule = build_link_schedule(
            instance.topology,
            20.0,
            LinkFaultConfig(
                mean_time_to_event_s=0.4,
                mean_repair_s=3.0,
                degrade_fraction=0.2,
                partition_prob=0.5,
                seed=seed,
            ),
        )
        for event in schedule[:prefix]:
            _apply(links, event, inflation=4.0)
        instance.paths.recompute(links.effective_delays())
        # Online sessions / the gateway daemon evict pairs whose home
        # became unreachable; what survives must satisfy invariant 5.
        cut = [
            a
            for a in inflight
            if not instance.paths.reachable(a.node, homes[a.query_id])
        ]
        for a in cut:
            state.release(a)
            inflight.remove(a)
        state.check_invariants(inflight, link_state=links, homes=homes)

    def test_invariant_raises_without_eviction(self):
        instance = _tiny_instance()
        state = ClusterState(instance)
        inflight = [state.serve(instance.queries[0], instance.dataset(0), 0)]
        homes = {0: 4}
        links = LinkState(instance.topology)
        # Cut node 4 (the query's home) off entirely.
        links.sever((3, 4))
        links.sever((0, 4))
        instance.paths.recompute(links.effective_delays())
        with pytest.raises(InvariantViolation, match="partitioned from home"):
            state.check_invariants(inflight, link_state=links, homes=homes)

    def test_unknown_home_is_skipped(self):
        instance = _tiny_instance()
        state = ClusterState(instance)
        inflight = [state.serve(instance.queries[0], instance.dataset(0), 0)]
        links = LinkState(instance.topology)
        links.sever((3, 4))
        links.sever((0, 4))
        instance.paths.recompute(links.effective_delays())
        # Recovered-checkpoint holds have no home record: exempt.
        state.check_invariants(inflight, link_state=links, homes={})


class TestMidRunDisconnection:
    """Satellite: partitioned sources screen infeasible, never stale."""

    def test_scalar_delay_goes_infinite(self):
        topo = _mesh_topology()
        state = LinkState(topo)
        cache = PathCache(topo)
        before = cache.delay(0, 4)
        assert np.isfinite(before)
        state.sever((0, 4))
        state.sever((3, 4))
        cache.recompute(state.effective_delays())
        assert np.isinf(cache.delay(0, 4))
        assert not cache.reachable(0, 4)
        state.restore_all()
        cache.recompute(state.effective_delays())
        assert cache.delay(0, 4) == pytest.approx(before)

    def test_vectorized_latency_goes_infinite(self):
        instance = _tiny_instance()
        state = ClusterState(instance)
        query = instance.queries[0]  # home is node 4
        dataset = instance.dataset(0)
        from repro.core.feasibility import delay_feasible_nodes, pair_latency_vector

        finite = pair_latency_vector(state, query, dataset)
        assert np.all(np.isfinite(finite))
        links = LinkState(instance.topology)
        links.sever((0, 4))
        links.sever((3, 4))
        instance.paths.recompute(links.effective_delays())
        vec = pair_latency_vector(state, query, dataset)
        # Home node 4 is cut off: every other placement node screens inf.
        index = instance.node_index
        for v in instance.placement_nodes:
            if v == 4:
                continue
            assert np.isinf(vec[index[v]])
        assert set(delay_feasible_nodes(state, query, dataset)) <= {4}
