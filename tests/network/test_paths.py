"""Tests for the all-pairs minimum-delay cache."""

import numpy as np
import pytest

from repro.network.paths import PathCache, all_pairs_min_delay
from repro.obs import MetricsRegistry, use_registry
from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.twotier import EdgeCloudTopology


def _line_topology() -> EdgeCloudTopology:
    """cl0 —0.1— cl1 —0.2— cl2, plus a shortcut cl0 —0.5— cl2."""
    specs = [
        NodeSpec(i, NodeKind.CLOUDLET, f"cl{i}", 8.0, 0.05) for i in range(3)
    ]
    return EdgeCloudTopology(
        specs, {(0, 1): 0.1, (1, 2): 0.2, (0, 2): 0.5}
    )


@pytest.fixture(scope="module")
def line_cache():
    return PathCache(_line_topology())


class TestAllPairs:
    def test_diagonal_zero(self, line_cache):
        for v in range(3):
            assert line_cache.delay(v, v) == 0.0

    def test_min_delay_beats_direct_link(self, line_cache):
        # 0→1→2 costs 0.3 < the direct 0.5 link.
        assert line_cache.delay(0, 2) == pytest.approx(0.3)

    def test_symmetric(self, line_cache):
        assert line_cache.delay(0, 2) == line_cache.delay(2, 0)

    def test_matrix_read_only(self, line_cache):
        matrix = line_cache.delays_matrix()
        with pytest.raises(ValueError):
            matrix[0, 0] = 5.0

    def test_disconnected_is_infinite(self):
        specs = [
            NodeSpec(i, NodeKind.CLOUDLET, f"cl{i}", 8.0, 0.05) for i in range(3)
        ]
        topo = EdgeCloudTopology(specs, {(0, 1): 0.1})
        cache = PathCache(topo)
        assert not cache.reachable(0, 2)
        assert np.isinf(cache.delay(0, 2))

    def test_raw_function_matches_cache(self, line_cache):
        delays, _ = all_pairs_min_delay(line_cache.topology)
        assert delays[0, 2] == pytest.approx(line_cache.delay(0, 2))


class TestDisconnectedTopologies:
    """Nodes without links must yield explicit ``inf``, not rely on
    whatever scipy does with an all-zero adjacency matrix."""

    @staticmethod
    def _specs(n):
        return [
            NodeSpec(i, NodeKind.CLOUDLET, f"cl{i}", 8.0, 0.05) for i in range(n)
        ]

    def test_no_links_at_all(self):
        topo = EdgeCloudTopology(self._specs(4), {})
        cache = PathCache(topo)
        for u in range(4):
            for v in range(4):
                if u == v:
                    assert cache.delay(u, v) == 0.0
                else:
                    assert np.isinf(cache.delay(u, v))
                    assert not cache.reachable(u, v)
        assert cache.predecessor(0, 1) == -9999

    def test_no_links_raw_function(self):
        topo = EdgeCloudTopology(self._specs(3), {})
        delays, pred = all_pairs_min_delay(topo)
        assert np.all(np.diag(delays) == 0.0)
        off_diag = ~np.eye(3, dtype=bool)
        assert np.all(np.isinf(delays[off_diag]))
        assert np.all(pred == -9999)

    def test_two_components(self):
        # {0–1} and {2–3} are internally connected, mutually unreachable.
        topo = EdgeCloudTopology(self._specs(4), {(0, 1): 0.1, (2, 3): 0.2})
        cache = PathCache(topo)
        assert cache.delay(0, 1) == pytest.approx(0.1)
        assert cache.delay(2, 3) == pytest.approx(0.2)
        for u, v in [(0, 2), (0, 3), (1, 2), (1, 3)]:
            assert np.isinf(cache.delay(u, v))
            assert not cache.reachable(u, v)

    def test_no_links_placement_vector_is_inf(self):
        topo = EdgeCloudTopology(self._specs(3), {})
        cache = PathCache(topo)
        vec = cache.placement_delays_to(1)
        # Entry for node 1 itself is 0; the others are unreachable.
        assert vec[1] == 0.0
        assert np.isinf(vec[0]) and np.isinf(vec[2])


class TestLookupCounters:
    def test_placement_vector_hit_miss_counters(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            cache = PathCache(_line_topology())
            first = cache.placement_delays_to(2)
            second = cache.placement_delays_to(2)
        assert registry.counter("pathcache.misses") == 1
        assert registry.counter("pathcache.hits") == 1
        assert registry.summary("pathcache.build_s").count == 1
        np.testing.assert_array_equal(first, second)
        assert not second.flags.writeable

    def test_delay_lookups_counted(self):
        registry = MetricsRegistry()
        cache = PathCache(_line_topology())
        with use_registry(registry):
            cache.delay(0, 1)
            cache.delay(0, 2)
        assert registry.counter("pathcache.lookups") == 2


class TestPlacementVectors:
    def test_placement_delays_to(self, paper_topology):
        cache = PathCache(paper_topology)
        home = paper_topology.placement_nodes[0]
        vec = cache.placement_delays_to(home)
        assert len(vec) == len(paper_topology.placement_nodes)
        for i, v in enumerate(paper_topology.placement_nodes):
            assert vec[i] == pytest.approx(cache.delay(v, home))

    def test_triangle_inequality_holds(self, paper_topology):
        cache = PathCache(paper_topology)
        nodes = paper_topology.placement_nodes[:6]
        for a in nodes:
            for b in nodes:
                for c in nodes:
                    assert cache.delay(a, c) <= cache.delay(a, b) + cache.delay(
                        b, c
                    ) + 1e-12
