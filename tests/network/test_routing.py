"""Tests for explicit path extraction."""

import pytest

from repro.network.paths import PathCache
from repro.network.routing import extract_path, path_delay
from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.twotier import EdgeCloudTopology


@pytest.fixture(scope="module")
def diamond():
    """0 — 1 — 3 (0.1 + 0.1) vs 0 — 2 — 3 (0.3 + 0.3)."""
    specs = [
        NodeSpec(i, NodeKind.CLOUDLET, f"cl{i}", 8.0, 0.05) for i in range(4)
    ]
    topo = EdgeCloudTopology(
        specs, {(0, 1): 0.1, (1, 3): 0.1, (0, 2): 0.3, (2, 3): 0.3}
    )
    return topo, PathCache(topo)


class TestExtractPath:
    def test_chooses_min_delay_branch(self, diamond):
        _, cache = diamond
        assert extract_path(cache, 0, 3) == [0, 1, 3]

    def test_self_path(self, diamond):
        _, cache = diamond
        assert extract_path(cache, 2, 2) == [2]

    def test_path_endpoints(self, diamond):
        _, cache = diamond
        path = extract_path(cache, 3, 0)
        assert path[0] == 3 and path[-1] == 0

    def test_no_path_raises(self):
        specs = [
            NodeSpec(i, NodeKind.CLOUDLET, f"cl{i}", 8.0, 0.05) for i in range(3)
        ]
        topo = EdgeCloudTopology(specs, {(0, 1): 0.1})
        cache = PathCache(topo)
        with pytest.raises(ValueError, match="no path"):
            extract_path(cache, 0, 2)

    def test_path_hops_are_edges(self, diamond):
        topo, cache = diamond
        path = extract_path(cache, 0, 3)
        for u, v in zip(path, path[1:]):
            topo.link_delay(u, v)  # raises KeyError if not an edge


class TestPathDelay:
    def test_matches_cache_delay(self, diamond):
        topo, cache = diamond
        path = extract_path(cache, 0, 3)
        assert path_delay(topo, path) == pytest.approx(cache.delay(0, 3))

    def test_single_node_path_zero(self, diamond):
        topo, _ = diamond
        assert path_delay(topo, [1]) == 0.0

    def test_paper_topology_consistency(self, paper_topology):
        cache = PathCache(paper_topology)
        nodes = paper_topology.placement_nodes
        for u in nodes[:5]:
            for v in nodes[5:10]:
                path = extract_path(cache, u, v)
                assert path_delay(paper_topology, path) == pytest.approx(
                    cache.delay(u, v)
                )
