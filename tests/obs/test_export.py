"""Exporter round-trips: JSONL event streams and Prometheus text dumps."""

import pytest

from repro.obs import (
    MetricsRegistry,
    parse_prometheus_text,
    prometheus_text,
    read_jsonl,
    to_events,
    write_jsonl,
    write_prometheus,
)


@pytest.fixture()
def populated() -> MetricsRegistry:
    reg = MetricsRegistry()
    with reg.span("outer", epoch=1):
        with reg.span("inner"):
            pass
    reg.inc("algo.appro-g.admitted", 7)
    reg.set_gauge("queue.depth", 3)
    for v in (0.1, 0.2, 0.3):
        reg.observe("latency_s", v)
    return reg


class TestJsonl:
    def test_round_trip(self, populated, tmp_path):
        path = write_jsonl(populated, tmp_path / "trace.jsonl")
        events = read_jsonl(path)
        assert events == to_events(populated)
        by_type = {}
        for e in events:
            by_type.setdefault(e["type"], []).append(e)
        assert {s["name"] for s in by_type["span"]} == {"outer", "inner"}
        (counter,) = by_type["counter"]
        assert counter["name"] == "algo.appro-g.admitted"
        assert counter["value"] == 7.0
        (summary,) = by_type["summary"]
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.6)

    def test_span_events_carry_structure(self, populated, tmp_path):
        events = read_jsonl(write_jsonl(populated, tmp_path / "t.jsonl"))
        spans = {e["name"]: e for e in events if e["type"] == "span"}
        assert spans["inner"]["parent"] == "outer"
        assert spans["outer"]["attributes"] == {"epoch": 1}
        assert spans["outer"]["error"] is None

    def test_empty_registry_writes_empty_file(self, tmp_path):
        path = write_jsonl(MetricsRegistry(), tmp_path / "empty.jsonl")
        assert read_jsonl(path) == []


class TestPrometheus:
    def test_counter_gets_total_suffix(self, populated):
        text = prometheus_text(populated)
        assert "repro_algo_appro_g_admitted_total 7" in text

    def test_summary_emits_quantiles_sum_count(self, populated):
        samples = parse_prometheus_text(prometheus_text(populated))
        assert samples["repro_latency_s_sum"] == pytest.approx(0.6)
        assert samples["repro_latency_s_count"] == 3
        assert 'repro_latency_s{quantile="0.5"}' in samples

    def test_spans_aggregate_per_name(self, populated):
        samples = parse_prometheus_text(prometheus_text(populated))
        assert samples["repro_span_outer_seconds_count"] == 1
        assert samples["repro_span_outer_seconds_sum"] >= 0.0

    def test_round_trip_through_file(self, populated, tmp_path):
        path = write_prometheus(populated, tmp_path / "metrics.prom")
        samples = parse_prometheus_text(path.read_text())
        assert samples["repro_algo_appro_g_admitted_total"] == 7.0
        assert samples["repro_queue_depth"] == 3.0

    def test_names_are_sanitised(self):
        reg = MetricsRegistry()
        reg.inc("weird.name-with/chars")
        text = prometheus_text(reg)
        assert "repro_weird_name_with_chars_total" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
