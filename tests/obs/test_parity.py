"""Instrumentation-parity property tests.

The observability layer's core guarantee: enabling a metrics registry
must never change what any algorithm decides.  For every registered
algorithm, on randomized instances, the :class:`PlacementSolution`
produced with collection enabled must be bit-identical to the one
produced under the default no-op registry, and the evaluated metrics
must match exactly.
"""

import pytest

from repro.core.metrics import evaluate_solution
from repro.core.registry import available_algorithms, make_algorithm
from repro.obs import MetricsRegistry, NULL_REGISTRY, get_registry, use_registry
from repro.topology.twotier import TwoTierConfig, generate_two_tier
from repro.util.rng import spawn_rng
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_workload

#: Small topology so the sweep over all algorithms (including the LP
#: solve of lp-rounding-g) stays fast.
_TOPOLOGY = TwoTierConfig(
    num_data_centers=2,
    num_cloudlets=6,
    num_switches=2,
    num_base_stations=2,
)
_SEEDS = (11, 23)


def _instances(special: bool):
    params = PaperDefaults()
    if special:
        params = params.single_dataset()
    for seed in _SEEDS:
        topology = generate_two_tier(_TOPOLOGY, seed=seed)
        yield generate_workload(topology, spawn_rng(seed, "parity"), params)


def _assert_identical(observed, baseline):
    assert observed.algorithm == baseline.algorithm
    assert observed.admitted == baseline.admitted
    assert observed.rejected == baseline.rejected
    assert dict(observed.replicas) == dict(baseline.replicas)
    assert dict(observed.assignments) == dict(baseline.assignments)
    assert dict(observed.extras) == dict(baseline.extras)


@pytest.mark.parametrize("name", available_algorithms())
def test_solution_identical_with_observability_enabled(name):
    special = name.endswith("-s")
    for instance in _instances(special):
        baseline = make_algorithm(name).solve(instance)
        registry = MetricsRegistry()
        with use_registry(registry):
            observed = make_algorithm(name).solve(instance)
        _assert_identical(observed, baseline)
        assert evaluate_solution(instance, observed) == evaluate_solution(
            instance, baseline
        )


@pytest.mark.parametrize("name", available_algorithms())
def test_registry_restored_after_solve(name):
    """Solving under a scoped registry leaves the global default intact."""
    special = name.endswith("-s")
    instance = next(iter(_instances(special)))
    with use_registry(MetricsRegistry()):
        make_algorithm(name).solve(instance)
    assert get_registry() is NULL_REGISTRY


@pytest.mark.parametrize(
    "name", ["greedy-s", "greedy-g", "appro-s", "appro-g", "lp-rounding-g"]
)
def test_instrumented_algorithms_account_every_query(name):
    """Admitted + rejected counters cover the whole batch, and the
    per-query admission timer observed exactly one duration per query."""
    special = name.endswith("-s")
    for instance in _instances(special):
        registry = MetricsRegistry()
        with use_registry(registry):
            make_algorithm(name).solve(instance)
        admitted = registry.counter(f"algo.{name}.admitted")
        rejected = registry.counter(f"algo.{name}.rejected")
        assert admitted + rejected == instance.num_queries
        timer = registry.summary(f"algo.{name}.admission_s")
        assert timer is not None and timer.count == instance.num_queries
        (span,) = registry.find_spans(f"algo.{name}.solve")
        assert span.attributes["queries"] == instance.num_queries


def test_repeated_instrumented_runs_are_stable():
    """Two instrumented runs agree with each other (determinism holds
    under collection, not just between on and off)."""
    instance = next(iter(_instances(False)))
    results = []
    for _ in range(2):
        with use_registry(MetricsRegistry()):
            results.append(make_algorithm("appro-g").solve(instance))
    _assert_identical(results[0], results[1])
