"""Tests for the metrics registry: counters, gauges, summaries, timers."""

import math

import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    P2Quantile,
    Summary,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounters:
    def test_inc_defaults_to_one(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a")
        assert reg.counter("a") == 2.0

    def test_inc_with_value(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 10.5)
        reg.inc("bytes", 2.5)
        assert reg.counter("bytes") == pytest.approx(13.0)

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter("never") == 0.0


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 7)
        assert reg.gauges["depth"] == 7.0


class TestSummaries:
    def test_count_sum_min_max_mean(self):
        summary = Summary()
        for v in (1.0, 2.0, 3.0, 4.0):
            summary.observe(v)
        assert summary.count == 4
        assert summary.total == pytest.approx(10.0)
        assert summary.min == 1.0
        assert summary.max == 4.0
        assert summary.mean == pytest.approx(2.5)

    def test_empty_summary_mean_is_nan(self):
        assert math.isnan(Summary().mean)

    def test_registry_observe_creates_summary(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5)
        reg.observe("lat", 1.5)
        assert reg.summary("lat").count == 2
        assert reg.summary("missing") is None

    def test_small_sample_quantile_is_exact_sample(self):
        summary = Summary()
        summary.observe(5.0)
        summary.observe(1.0)
        assert summary.quantile(0.5) in (1.0, 5.0)

    def test_streaming_median_converges(self):
        summary = Summary()
        for v in range(1, 1001):
            summary.observe(float(v))
        # P² estimate of the median of 1..1000 lands near 500.
        assert summary.quantile(0.5) == pytest.approx(500.0, rel=0.05)
        assert summary.quantile(0.9) == pytest.approx(900.0, rel=0.05)

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(1.5)
        assert math.isnan(P2Quantile(0.5).value())


class TestTimers:
    def test_timer_records_positive_duration(self):
        reg = MetricsRegistry()
        with reg.time("work_s"):
            sum(range(1000))
        summary = reg.summary("work_s")
        assert summary.count == 1
        assert summary.total > 0.0

    def test_timer_records_even_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.time("bad_s"):
                raise RuntimeError("boom")
        assert reg.summary("bad_s").count == 1


class TestGlobalRegistry:
    def test_default_is_null_registry(self):
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled

    def test_use_registry_installs_and_restores(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert get_registry() is reg
            get_registry().inc("x")
        assert get_registry() is NULL_REGISTRY
        assert reg.counter("x") == 1.0

    def test_use_registry_restores_on_exception(self):
        with pytest.raises(ValueError):
            with use_registry(MetricsRegistry()):
                raise ValueError("boom")
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_none_installs_null(self):
        previous = set_registry(None)
        assert previous is NULL_REGISTRY
        assert get_registry() is NULL_REGISTRY

    def test_nested_use_registry(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                get_registry().inc("n")
            assert get_registry() is outer
        assert inner.counter("n") == 1.0
        assert outer.counter("n") == 0.0


class TestNullRegistry:
    def test_all_operations_are_noops(self):
        null = NullRegistry()
        null.inc("a")
        null.set_gauge("g", 1)
        null.observe("s", 2.0)
        with null.time("t"):
            pass
        with null.span("sp", k=1) as sp:
            sp.set(more=2)
        assert null.counter("a") == 0.0
        assert null.summary("s") is None
        assert null.find_spans() == []
        assert null.counters == {} and null.gauges == {} and null.summaries == {}

    def test_null_contexts_are_shared_singletons(self):
        null = NullRegistry()
        assert null.time("a") is null.time("b") is null.span("c")
