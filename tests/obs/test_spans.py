"""Tests for trace spans: nesting, attributes, exception safety."""

import pytest

from repro.obs import MetricsRegistry


class TestNesting:
    def test_root_span_has_no_parent(self):
        reg = MetricsRegistry()
        with reg.span("root"):
            pass
        (span,) = reg.spans
        assert span.name == "root"
        assert span.parent is None
        assert span.depth == 0

    def test_child_records_parent_and_depth(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                with reg.span("leaf"):
                    pass
        names = [s.name for s in reg.spans]
        # Completion order: innermost first.
        assert names == ["leaf", "inner", "outer"]
        by_name = {s.name: s for s in reg.spans}
        assert by_name["leaf"].parent == "inner"
        assert by_name["leaf"].depth == 2
        assert by_name["inner"].parent == "outer"
        assert by_name["outer"].parent is None

    def test_siblings_share_parent(self):
        reg = MetricsRegistry()
        with reg.span("parent"):
            with reg.span("a"):
                pass
            with reg.span("b"):
                pass
        by_name = {s.name: s for s in reg.spans}
        assert by_name["a"].parent == "parent"
        assert by_name["b"].parent == "parent"
        assert by_name["a"].index < by_name["b"].index

    def test_stack_empty_after_exit(self):
        reg = MetricsRegistry()
        with reg.span("x"):
            pass
        assert reg._span_stack == []


class TestAttributes:
    def test_open_attributes_recorded(self):
        reg = MetricsRegistry()
        with reg.span("op", epoch=3, algorithm="appro-g"):
            pass
        span = reg.find_spans("op")[0]
        assert span.attributes == {"epoch": 3, "algorithm": "appro-g"}

    def test_set_updates_mid_span(self):
        reg = MetricsRegistry()
        with reg.span("op", epoch=0) as sp:
            sp.set(epoch=1, admitted=5)
        span = reg.find_spans("op")[0]
        assert span.attributes["epoch"] == 1
        assert span.attributes["admitted"] == 5

    def test_duration_is_positive_wall_time(self):
        reg = MetricsRegistry()
        with reg.span("timed"):
            sum(range(1000))
        assert reg.spans[0].duration_s > 0.0


class TestExceptionSafety:
    def test_span_closed_by_exception_still_records_and_reraises(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError, match="boom"):
            with reg.span("failing", attempt=1):
                raise RuntimeError("boom")
        (span,) = reg.spans
        assert span.name == "failing"
        assert span.error is not None and "boom" in span.error
        assert span.duration_s >= 0.0
        assert span.attributes == {"attempt": 1}
        assert reg._span_stack == []

    def test_parent_survives_child_exception(self):
        reg = MetricsRegistry()
        with reg.span("parent"):
            with pytest.raises(ValueError):
                with reg.span("child"):
                    raise ValueError("inner")
            with reg.span("sibling"):
                pass
        by_name = {s.name: s for s in reg.spans}
        assert by_name["child"].error is not None
        assert by_name["parent"].error is None
        assert by_name["sibling"].parent == "parent"

    def test_successful_span_has_no_error(self):
        reg = MetricsRegistry()
        with reg.span("fine"):
            pass
        assert reg.spans[0].error is None
