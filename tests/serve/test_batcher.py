"""Tests for the micro-batching queue."""

import asyncio

import pytest

from repro.serve import MicroBatcher
from repro.util.validation import ValidationError


def run(coro):
    return asyncio.run(coro)


class TestOffer:
    def test_accepts_until_bound(self):
        async def scenario():
            batcher = MicroBatcher(queue_bound=3)
            assert all(batcher.offer(i) for i in range(3))
            assert batcher.offer(99) is False  # full: shed
            assert batcher.depth == 3

        run(scenario())

    def test_depth_tracks_queue(self):
        async def scenario():
            batcher = MicroBatcher()
            assert batcher.depth == 0
            batcher.offer("a")
            assert batcher.depth == 1
            await batcher.next_batch()
            assert batcher.depth == 0

        run(scenario())


class TestNextBatch:
    def test_flushes_on_size(self):
        async def scenario():
            batcher = MicroBatcher(max_batch=4, max_wait_s=60.0)
            for i in range(10):
                batcher.offer(i)
            assert await batcher.next_batch() == [0, 1, 2, 3]
            assert await batcher.next_batch() == [4, 5, 6, 7]

        run(scenario())

    def test_flushes_on_deadline(self):
        async def scenario():
            batcher = MicroBatcher(max_batch=100, max_wait_s=0.01)
            batcher.offer("only")
            started = asyncio.get_running_loop().time()
            batch = await batcher.next_batch()
            waited = asyncio.get_running_loop().time() - started
            assert batch == ["only"]
            assert waited >= 0.009  # held the flush deadline open

        run(scenario())

    def test_eager_mode_flushes_backlog_without_waiting(self):
        async def scenario():
            batcher = MicroBatcher(max_batch=16)  # max_wait_s=0: eager
            for i in range(5):
                batcher.offer(i)
            started = asyncio.get_running_loop().time()
            batch = await batcher.next_batch()
            waited = asyncio.get_running_loop().time() - started
            assert batch == [0, 1, 2, 3, 4]  # the backlog, nothing more
            assert waited < 0.05  # no accumulation window held open

        run(scenario())

    def test_max_batch_one_skips_coalescing(self):
        async def scenario():
            batcher = MicroBatcher(max_batch=1, max_wait_s=60.0)
            batcher.offer("a")
            batcher.offer("b")
            assert await batcher.next_batch() == ["a"]
            assert await batcher.next_batch() == ["b"]

        run(scenario())

    def test_waits_for_first_item(self):
        async def scenario():
            batcher = MicroBatcher(max_wait_s=0.005)

            async def feed():
                await asyncio.sleep(0.01)
                batcher.offer("late")

            feeder = asyncio.ensure_future(feed())
            batch = await batcher.next_batch()
            await feeder
            assert batch == ["late"]

        run(scenario())

    def test_late_arrivals_join_open_batch(self):
        async def scenario():
            batcher = MicroBatcher(max_batch=3, max_wait_s=0.05)
            batcher.offer("a")

            async def feed():
                await asyncio.sleep(0.005)
                batcher.offer("b")

            feeder = asyncio.ensure_future(feed())
            batch = await batcher.next_batch()
            await feeder
            assert batch == ["a", "b"]

        run(scenario())


class TestStragglerDeadline:
    """The ``max_wait_s > 0`` straggler window, with timing-robust bounds.

    These tests avoid racing tight sleeps: each asserts an *ordering*
    (size beat the deadline; the deadline closed the batch; a
    past-deadline item waits for the next batch) with margins an order
    of magnitude wider than the scheduler jitter they tolerate.
    """

    def test_flush_on_size_beats_deadline(self):
        async def scenario():
            # Deadline far in the future: only the size trigger can
            # close the batch promptly.
            batcher = MicroBatcher(max_batch=3, max_wait_s=60.0)
            batcher.offer("a")

            async def feed():
                batcher.offer("b")
                batcher.offer("c")
                batcher.offer("d")  # next batch's — beyond max_batch

            feeder = asyncio.ensure_future(feed())
            started = asyncio.get_running_loop().time()
            batch = await asyncio.wait_for(batcher.next_batch(), timeout=10.0)
            waited = asyncio.get_running_loop().time() - started
            await feeder
            assert batch == ["a", "b", "c"]
            assert waited < 10.0  # flushed on size, not the 60 s deadline
            assert batcher.depth == 1  # "d" waits for the next batch

        run(scenario())

    def test_flush_on_deadline_with_partial_batch(self):
        async def scenario():
            batcher = MicroBatcher(max_batch=1000, max_wait_s=0.05)
            loop = asyncio.get_running_loop()
            batcher.offer("first")

            async def feed():
                await asyncio.sleep(0.01)
                batcher.offer("straggler")

            feeder = asyncio.ensure_future(feed())
            started = loop.time()
            batch = await asyncio.wait_for(batcher.next_batch(), timeout=10.0)
            waited = loop.time() - started
            await feeder
            # The deadline closed the batch well short of max_batch; the
            # window was actually held open (lower bound only — upper
            # bounds race the scheduler).
            assert batch[0] == "first"
            assert len(batch) < 1000
            assert waited >= 0.04

        run(scenario())

    def test_deadline_counts_from_first_item(self):
        async def scenario():
            batcher = MicroBatcher(max_batch=1000, max_wait_s=0.05)
            loop = asyncio.get_running_loop()
            waiter = asyncio.ensure_future(batcher.next_batch())
            await asyncio.sleep(0.2)  # idle: no deadline is running yet
            first_offered = loop.time()
            batcher.offer("first")
            batch = await asyncio.wait_for(waiter, timeout=10.0)
            waited = loop.time() - first_offered
            assert batch == ["first"]
            # The window opened when the first item arrived, not when
            # next_batch() started waiting 0.2 s earlier.
            assert waited >= 0.04

        run(scenario())

    def test_item_after_deadline_starts_next_batch(self):
        async def scenario():
            batcher = MicroBatcher(max_batch=1000, max_wait_s=0.02)
            batcher.offer("first")
            batch = await asyncio.wait_for(batcher.next_batch(), timeout=10.0)
            assert batch == ["first"]
            batcher.offer("late")  # past the flushed batch's deadline
            batch = await asyncio.wait_for(batcher.next_batch(), timeout=10.0)
            assert batch == ["late"]

        run(scenario())


class TestDrain:
    def test_drain_empties_queue(self):
        async def scenario():
            batcher = MicroBatcher()
            for i in range(5):
                batcher.offer(i)
            assert batcher.drain_nowait() == [0, 1, 2, 3, 4]
            assert batcher.depth == 0

        run(scenario())


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_wait_s": -0.001},
            {"queue_bound": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            MicroBatcher(**kwargs)
