"""End-to-end tests for the admission gateway (real TCP, real batches)."""

import asyncio
import contextlib
import dataclasses
import json

import numpy as np
import pytest

from repro.io.serialize import state_to_dict
from repro.serve import (
    AdmissionGateway,
    GatewayClient,
    GatewayConfig,
    GatewayThread,
    QueryFactory,
    ReoptimizerConfig,
    run_closed_loop,
    run_open_loop,
)
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_workload


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def serve_instance(small_topology):
    """A compact workload instance the gateway serves in these tests."""
    return generate_workload(small_topology, spawn_rng(5, "serve"), PaperDefaults())


@contextlib.asynccontextmanager
async def running_gateway(instance, **config):
    gateway = AdmissionGateway(instance, GatewayConfig(**config))
    await gateway.start()
    try:
        yield gateway
    finally:
        if not gateway._closed.is_set():
            await gateway.stop()


class TestConfig:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValidationError, match="rule"):
            GatewayConfig(rule="oracle")

    def test_bad_watermark_rejected(self):
        with pytest.raises(ValidationError, match="watermark"):
            GatewayConfig(compute_watermark=1.5)


class TestSubmit:
    def test_admit_and_reject_over_tcp(self, tiny_instance):
        async def scenario():
            async with running_gateway(tiny_instance) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    generous = await client.submit(tiny_instance.queries[0])
                    assert generous["ok"] and generous["result"] == "admitted"
                    assert generous["response_s"] > 0
                    assert len(generous["assignments"]) == 1

                    hopeless = dataclasses.replace(
                        tiny_instance.queries[2], query_id=77, deadline_s=1e-9
                    )
                    rejected = await client.submit(hopeless)
                    assert rejected["ok"] and rejected["result"] == "rejected"
                    assert rejected["reason"] == "deadline-infeasible"
                assert gateway.counters["admitted"] == 1
                assert gateway.counters["fast_rejected"] == 1

        run(scenario())

    def test_admission_allocates_and_places(self, tiny_instance):
        async def scenario():
            async with running_gateway(tiny_instance) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    response = await client.submit(tiny_instance.queries[1])
                assert response["result"] == "admitted"
                total = sum(a["compute_ghz"] for a in response["assignments"])
                assert gateway.state.total_allocated() == pytest.approx(total)
                for a in response["assignments"]:
                    assert a["node"] in gateway.state.replicas.nodes(a["dataset_id"])

        run(scenario())

    def test_hold_releases_compute(self, tiny_instance):
        async def scenario():
            # hold_factor shrinks the wall-clock hold to ~milliseconds.
            async with running_gateway(tiny_instance, hold_factor=1e-3) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    response = await client.submit(tiny_instance.queries[0])
                    assert response["result"] == "admitted"
                    deadline = asyncio.get_running_loop().time() + 5.0
                    while gateway.state.total_allocated() > 0:
                        assert asyncio.get_running_loop().time() < deadline
                        await asyncio.sleep(0.005)
                assert gateway.state.total_allocated() == 0.0

        run(scenario())

    def test_pipelined_requests_correlate(self, serve_instance):
        async def scenario():
            async with running_gateway(serve_instance) as gateway:
                host, port = gateway.address
                factory = QueryFactory(serve_instance, seed=3)
                async with await GatewayClient.connect(host, port) as client:
                    responses = await asyncio.gather(
                        *(client.submit(factory.make()) for _ in range(20))
                    )
                assert all(r["ok"] for r in responses)
                assert gateway.counters["submitted"] == 20

        run(scenario())


class TestProbeEquivalence:
    def test_probe_mask_matches_can_serve_mask(self, serve_instance):
        """The batch-shared probe is element-for-element ``can_serve_mask``."""

        async def scenario():
            async with running_gateway(serve_instance) as gateway:
                host, port = gateway.address
                factory = QueryFactory(serve_instance, seed=11)
                async with await GatewayClient.connect(host, port) as client:
                    for _ in range(30):  # build up replicas + allocations
                        await client.submit(factory.make())
                state = gateway.state
                available = state.available_array()
                for query in serve_instance.queries:
                    for d_id in query.demanded:
                        expected = state.can_serve_mask(
                            query, serve_instance.dataset(d_id)
                        )
                        actual = gateway._probe_mask(query, d_id, available)
                        assert np.array_equal(actual, expected)

        run(scenario())

    def test_batched_decisions_match_serial(self, serve_instance):
        """max_batch=16 admits exactly what one-at-a-time admits."""

        async def scenario(max_batch):
            results = []
            async with running_gateway(
                serve_instance, max_batch=max_batch, hold_factor=100.0
            ) as gateway:
                host, port = gateway.address
                factory = QueryFactory(serve_instance, seed=4)
                async with await GatewayClient.connect(host, port) as client:
                    for _ in range(40):
                        response = await client.submit(factory.make())
                        results.append(response["result"])
            return results

        serial = run(scenario(1))
        batched = run(scenario(16))
        assert serial == batched


class TestBackpressure:
    def test_watermark_sheds(self, tiny_instance):
        async def scenario():
            async with running_gateway(
                tiny_instance, compute_watermark=0.05
            ) as gateway:
                for ledger in gateway.state.nodes.values():
                    ledger.allocate((999, ledger.node_id), ledger.available_ghz / 2)
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    response = await client.submit(tiny_instance.queries[0])
                assert response["result"] == "shed"
                assert response["retry_after_s"] > 0
                assert gateway.counters["shed"] == 1

        run(scenario())

    def test_full_queue_sheds(self, tiny_instance):
        async def scenario():
            gateway = AdmissionGateway(
                tiny_instance, GatewayConfig(queue_bound=2)
            )
            # No worker is running: offers pile up until the bound.
            loop = asyncio.get_running_loop()
            futures = [loop.create_future() for _ in range(3)]
            from repro.serve.gateway import _Pending

            query = tiny_instance.queries[0]
            assert gateway._batcher.offer(_Pending(query, futures[0]))
            assert gateway._batcher.offer(_Pending(query, futures[1]))
            assert not gateway._batcher.offer(_Pending(query, futures[2]))

        run(scenario())


class TestProtocolOverWire:
    def test_garbage_line_keeps_connection_alive(self, tiny_instance):
        async def scenario():
            async with running_gateway(tiny_instance) as gateway:
                host, port = gateway.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                await writer.drain()
                error = json.loads(await reader.readline())
                assert error["ok"] is False
                writer.write(b'{"op": "status", "id": 5}\n')
                await writer.drain()
                status = json.loads(await reader.readline())
                assert status["id"] == 5 and status["ok"] is True
                writer.close()
                await writer.wait_closed()
                assert gateway.counters["protocol_errors"] == 1

        run(scenario())

    def test_oversized_line_gets_error_response(self, tiny_instance):
        """A peer streaming > MAX_LINE_BYTES without a newline is told
        why before the (desynced) connection is closed — not dropped
        with an unexplained reset."""
        from repro.serve.protocol import MAX_LINE_BYTES

        async def scenario():
            async with running_gateway(tiny_instance) as gateway:
                host, port = gateway.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"x" * (MAX_LINE_BYTES + 1024))
                await writer.drain()
                error = json.loads(await reader.readline())
                assert error["ok"] is False
                assert "exceeds" in error["error"]
                # The gateway closes the stream after the error.
                assert await reader.read() == b""
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()
                assert gateway.counters["protocol_errors"] == 1

        run(scenario())

    def test_status_reports_counters(self, tiny_instance):
        async def scenario():
            async with running_gateway(tiny_instance) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    await client.submit(tiny_instance.queries[0])
                    status = await client.status()
                assert status["counters"]["submitted"] == 1
                assert status["total_capacity_ghz"] > 0
                assert status["recovered"] is False

        run(scenario())

    def test_shutdown_op_stops_gateway(self, tiny_instance):
        async def scenario():
            gateway = AdmissionGateway(tiny_instance)
            await gateway.start()
            host, port = gateway.address
            async with await GatewayClient.connect(host, port) as client:
                response = await client.shutdown()
                assert response["stopping"] is True
            await asyncio.wait_for(gateway.wait_closed(), timeout=5.0)

        run(scenario())


class TestCheckpointing:
    def test_restart_restores_bit_identical_state(self, serve_instance, tmp_path):
        path = tmp_path / "gateway.ckpt.json"

        async def serve_and_stop():
            async with running_gateway(
                serve_instance, checkpoint_path=str(path), hold_factor=100.0
            ) as gateway:
                host, port = gateway.address
                await run_closed_loop(
                    host,
                    port,
                    QueryFactory(serve_instance, seed=6),
                    num_requests=60,
                    concurrency=4,
                )
                await gateway.stop()  # writes the final checkpoint
                return gateway

        async def restart():
            gateway = AdmissionGateway(
                serve_instance, GatewayConfig(checkpoint_path=str(path))
            )
            return gateway

        before = run(serve_and_stop())
        after = run(restart())
        assert after.recovered
        assert state_to_dict(after.state) == state_to_dict(before.state)
        assert np.array_equal(
            after.state.available_array(), before.state.available_array()
        )
        assert after.state.replicas.replica_map() == before.state.replicas.replica_map()
        assert after.counters["admitted"] == before.counters["admitted"]

    def test_recovered_holds_release(self, tiny_instance, tmp_path):
        """Allocations restored from a checkpoint drain after the grace hold."""
        path = tmp_path / "gateway.ckpt.json"

        async def first():
            async with running_gateway(
                tiny_instance, checkpoint_path=str(path), hold_factor=100.0
            ) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    response = await client.submit(tiny_instance.queries[0])
                    assert response["result"] == "admitted"
                await gateway.stop()
                return gateway.state.total_allocated()

        async def second():
            gateway = AdmissionGateway(
                tiny_instance,
                GatewayConfig(checkpoint_path=str(path), recovery_hold_s=0.01),
            )
            assert gateway.recovered
            restored = gateway.state.total_allocated()
            await gateway.start()
            try:
                deadline = asyncio.get_running_loop().time() + 5.0
                while gateway.state.total_allocated() > 0:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.005)
            finally:
                await gateway.stop()
            return restored

        held = run(first())
        assert held > 0
        assert run(second()) == pytest.approx(held)

    def test_periodic_checkpoints(self, tiny_instance, tmp_path):
        path = tmp_path / "gateway.ckpt.json"

        async def scenario():
            async with running_gateway(
                tiny_instance,
                checkpoint_path=str(path),
                checkpoint_interval_s=0.02,
            ) as gateway:
                deadline = asyncio.get_running_loop().time() + 5.0
                while not path.exists():
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.005)
                payload = json.loads(path.read_text())
                assert payload["format"] == "repro/serve-checkpoint/v1"
                assert gateway.counters["checkpoints"] >= 1

        run(scenario())

    def test_wrong_format_rejected(self, tiny_instance, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "other", "state": {}}))
        with pytest.raises(ValidationError, match="format"):
            AdmissionGateway(
                tiny_instance, GatewayConfig(checkpoint_path=str(path))
            )


class TestIdReuseAndCrashSafety:
    """Regressions for the recovered-hold tag collision and shutdown hang.

    Replaying a workload over a recovered checkpoint resubmits query ids
    whose holds are still live; the placement used to re-allocate the
    same (query, dataset) tag, raising ``CapacityError`` inside the
    admission worker, and ``stop()`` then re-raised it at ``await task``
    and never unblocked ``wait_closed()``.
    """

    def test_resubmit_live_id_replaces_hold(self, tiny_instance):
        async def scenario():
            async with running_gateway(tiny_instance, hold_factor=100.0) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    first = await client.submit(tiny_instance.queries[0])
                    assert first["result"] == "admitted"
                    held = gateway.state.total_allocated()
                    second = await client.submit(tiny_instance.queries[0])
                    assert second["result"] == "admitted"
                # Latest decision wins: the old hold was evicted, not
                # stacked, so allocated compute did not double.
                assert gateway.state.total_allocated() == pytest.approx(held)
                assert gateway.counters["admit_errors"] == 0
                q_id = tiny_instance.queries[0].query_id
                assert len(gateway._inflight[q_id]) == len(second["assignments"])

        run(scenario())

    def test_replay_over_recovered_checkpoint(self, tiny_instance, tmp_path):
        path = tmp_path / "gateway.ckpt.json"

        async def first():
            async with running_gateway(
                tiny_instance, checkpoint_path=str(path), hold_factor=100.0
            ) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    for query in tiny_instance.queries[:2]:
                        response = await client.submit(query)
                        assert response["result"] == "admitted"
                await gateway.stop()

        async def replay():
            # A long recovery hold keeps every restored allocation live
            # while the identical workload is replayed at it.
            async with running_gateway(
                tiny_instance,
                checkpoint_path=str(path),
                recovery_hold_s=100.0,
                hold_factor=100.0,
            ) as gateway:
                assert gateway.recovered
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    for query in tiny_instance.queries[:2]:
                        response = await client.submit(query)
                        assert response["ok"]
                        assert response["result"] == "admitted"
                assert gateway.counters["admit_errors"] == 0
                await asyncio.wait_for(gateway.stop(), timeout=5.0)
                assert gateway._closed.is_set()

        run(first())
        run(replay())

    def test_stop_completes_after_task_crash(self, tiny_instance):
        async def scenario():
            async with running_gateway(tiny_instance) as gateway:

                async def doomed():
                    raise RuntimeError("background task died")

                gateway._tasks.append(asyncio.create_task(doomed()))
                await asyncio.sleep(0)  # let it fail before stop() awaits it
                await asyncio.wait_for(gateway.stop(), timeout=5.0)
                assert gateway._closed.is_set()
                assert gateway.counters["task_crashes"] == 1

        run(scenario())


class TestLoadGenerators:
    def test_query_factory_deterministic(self, serve_instance):
        a = QueryFactory(serve_instance, seed=9)
        b = QueryFactory(serve_instance, seed=9)
        for _ in range(20):
            assert a.make() == b.make()

    def test_factory_respects_instance(self, serve_instance):
        factory = QueryFactory(serve_instance, seed=2)
        for _ in range(50):
            query = factory.make()
            assert set(query.demanded) <= set(serve_instance.datasets)
            assert query.deadline_s > 0

    def test_open_loop_report(self, serve_instance):
        async def scenario():
            async with running_gateway(serve_instance) as gateway:
                host, port = gateway.address
                report = await run_open_loop(
                    host,
                    port,
                    QueryFactory(serve_instance, seed=13),
                    num_requests=30,
                    rate_rps=2000.0,
                )
                return report

        report = run(scenario())
        assert report.submitted == 30
        assert report.admitted + report.rejected + report.shed == 30
        assert report.protocol_errors == 0
        assert report.percentile(99) >= report.percentile(50) >= 0
        summary = report.summary()
        assert summary["submitted"] == 30
        json.dumps(summary)


class TestGatewayThread:
    def test_serves_from_background_thread(self, serve_instance, tmp_path):
        gateway = AdmissionGateway(
            serve_instance,
            GatewayConfig(checkpoint_path=str(tmp_path / "t.ckpt.json")),
        )
        thread = GatewayThread(gateway)
        host, port = thread.start()
        try:
            report = run(
                run_closed_loop(
                    host,
                    port,
                    QueryFactory(serve_instance, seed=8),
                    num_requests=40,
                    concurrency=4,
                )
            )
            assert report.submitted == 40
            assert report.protocol_errors == 0
        finally:
            thread.stop()
        assert (tmp_path / "t.ckpt.json").exists()


class TestReoptimizerGoldenParity:
    """PR-5 pin: an enabled re-optimizer under zero drift is invisible.

    The same strictly-sequential submission stream is served twice — once
    by the plain gateway, once with the daemon enabled (a fast background
    interval *plus* explicit mid-stream cycles).  A stationary workload
    never crosses the drift gate, so every decision and the final
    checkpoint must be byte-for-byte identical to the baseline.
    """

    def _drive(self, serve_instance, path, reopt):
        async def scenario():
            results = []
            async with running_gateway(
                serve_instance,
                hold_factor=100.0,
                checkpoint_path=str(path),
                reopt=reopt,
            ) as gateway:
                host, port = gateway.address
                factory = QueryFactory(serve_instance, seed=8)
                async with await GatewayClient.connect(host, port) as client:
                    for i in range(40):
                        response = await client.submit(factory.make())
                        results.append(response["result"])
                        if reopt is not None and i in (19, 39):
                            cycle = await client.reopt()
                            assert cycle["ok"] is True
                status = gateway.status()
                await gateway.stop()  # writes the final checkpoint
                return results, status, dict(gateway.counters)

        return run(scenario())

    def test_zero_drift_is_bit_identical(self, serve_instance, tmp_path):
        plain_path = tmp_path / "plain.ckpt.json"
        reopt_path = tmp_path / "reopt.ckpt.json"
        config = ReoptimizerConfig(interval_s=0.01, window=64, min_window=8)

        plain_results, plain_status, plain_counters = self._drive(
            serve_instance, plain_path, None
        )
        reopt_results, reopt_status, reopt_counters = self._drive(
            serve_instance, reopt_path, config
        )

        assert reopt_results == plain_results
        assert reopt_counters == plain_counters
        assert reopt_path.read_bytes() == plain_path.read_bytes()

        # The daemon ran (explicit cycles at least) but never migrated.
        assert "reopt" not in plain_status
        daemon = reopt_status["reopt"]
        assert daemon["cycles"] >= 2
        assert daemon["migrated_steps"] == 0
        assert daemon["migrated_gb"] == 0.0
        last = daemon["last_cycle"]
        assert last["reason"] in ("drift-below-threshold", "reference-set")
