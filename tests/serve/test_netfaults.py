"""Tests for the gateway's network-dynamics daemon and its parity contract.

Covers the daemon cycle machinery (forced cycles, schedule exhaustion,
partition eviction), the golden disabled-parity pin (a gateway whose
dynamics never fire is byte-identical — responses, counters, checkpoint
bytes — to one with no dynamics configured at all), the generation-
stamped invalidation of the gateway's and the front router's latency
caches, the mobility trace mode, and the sync-taxed greedy rule.
"""

import asyncio
import contextlib
import dataclasses

import numpy as np
import pytest

from repro.cluster.consistency import ConsistencyModel
from repro.core.greedy import make_sync_greedy_place_pair
from repro.network.dynamics import LinkFaultConfig
from repro.serve import (
    AdmissionGateway,
    FrontRouter,
    GatewayClient,
    GatewayConfig,
    NetFaultConfig,
    QueryFactory,
)
from repro.serve.protocol import OPS, decode_request, encode_message
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_workload


def run(coro):
    return asyncio.run(coro)


@contextlib.asynccontextmanager
async def running_gateway(instance, **config):
    gateway = AdmissionGateway(instance, GatewayConfig(**config))
    await gateway.start()
    try:
        yield gateway
    finally:
        if not gateway._closed.is_set():
            await gateway.stop()


def _serve_instance(small_topology):
    """A fresh instance per call: dynamics mutate the path cache."""
    return generate_workload(small_topology, spawn_rng(5, "serve"), PaperDefaults())


#: A daemon config whose background loop never fires during a test
#: (interval >> test wall-clock) but whose schedule is dense, so forced
#: cycles deterministically apply events.
_DENSE = NetFaultConfig(
    interval_s=60.0,
    horizon_s=50.0,
    faults=LinkFaultConfig(
        mean_time_to_event_s=0.2,
        mean_repair_s=1.0,
        partition_prob=0.3,
        seed=9,
    ),
)

#: Dynamics configured but with an empty schedule: the daemon exists,
#: runs, and must change nothing (the parity pin's hard mode).
_EMPTY = NetFaultConfig(
    interval_s=60.0,
    horizon_s=50.0,
    faults=LinkFaultConfig(max_events=0),
)


class TestConfigValidation:
    def test_bad_interval(self):
        with pytest.raises(ValidationError, match="interval_s"):
            NetFaultConfig(interval_s=0.0)

    def test_bad_horizon(self):
        with pytest.raises(ValidationError, match="horizon_s"):
            NetFaultConfig(horizon_s=-1.0)

    def test_incompatible_with_shards(self, tiny_instance):
        with pytest.raises(ValidationError, match="shard-scoped"):
            GatewayConfig(
                netfaults=_DENSE,
                shard_nodes=tuple(tiny_instance.placement_nodes[:2]),
            )

    def test_netfault_op_registered(self):
        assert "netfault" in OPS
        decode_request(encode_message({"op": "netfault", "id": 1}).strip())


class TestDaemonCycles:
    def test_forced_cycle_applies_events(self, small_topology):
        instance = _serve_instance(small_topology)

        async def scenario():
            async with running_gateway(instance, netfaults=_DENSE) as gateway:
                daemon = gateway.netfaults
                assert daemon is not None and len(daemon._schedule) > 0
                report = await daemon.run_cycle(force=True)
                assert report.applied >= 1
                assert report.generation == instance.paths.generation > 0
                assert report.applied == (
                    report.degrades + report.severs + report.restores
                )
                assert 0.0 <= report.link_availability <= 1.0
                payload = report.to_dict()
                assert payload["cycle"] == 1 and payload["applied"] >= 1

        run(scenario())

    def test_unforced_cycle_waits_for_clock(self, small_topology):
        instance = _serve_instance(small_topology)
        sparse = dataclasses.replace(
            _DENSE,
            faults=LinkFaultConfig(mean_time_to_event_s=1e6, seed=9),
        )

        async def scenario():
            async with running_gateway(instance, netfaults=sparse) as gateway:
                report = await gateway.netfaults.run_cycle()
                assert report.applied == 0
                assert instance.paths.generation == 0

        run(scenario())

    def test_schedule_exhausts(self, small_topology):
        instance = _serve_instance(small_topology)

        async def scenario():
            async with running_gateway(instance, netfaults=_EMPTY) as gateway:
                report = await gateway.netfaults.run_cycle(force=True)
                assert report.applied == 0
                assert report.reason == "schedule-exhausted"
                status = gateway.netfaults.status()
                assert status["events_remaining"] == 0
                assert status["generation"] == 0

        run(scenario())

    def test_netfault_op_over_tcp(self, small_topology):
        instance = _serve_instance(small_topology)

        async def scenario():
            async with running_gateway(instance, netfaults=_DENSE) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    response = await client.netfault(force=True)
                    assert response["ok"] and response["applied"] >= 1
                status = gateway.status()
                assert status["netfault"]["cycles"] == 1

        run(scenario())

    def test_netfault_op_errors_when_disabled(self, tiny_instance):
        async def scenario():
            async with running_gateway(tiny_instance) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    response = await client.netfault(force=True)
                    assert not response["ok"]
                    assert "not enabled" in response["error"]

        run(scenario())

    def test_stop_restores_base_delays(self, small_topology):
        instance = _serve_instance(small_topology)
        base = np.array(instance.paths.delays_matrix())

        async def scenario():
            async with running_gateway(instance, netfaults=_DENSE) as gateway:
                for _ in range(4):
                    await gateway.netfaults.run_cycle(force=True)
                assert instance.paths.generation >= 4

        run(scenario())
        # stop() healed every link and recomputed: values match the
        # pristine table even though the generation stamp moved on.
        np.testing.assert_array_equal(instance.paths.delays_matrix(), base)


class TestPartitionEviction:
    def test_partitioned_inflight_query_is_evicted(self, tiny_instance):
        async def scenario():
            async with running_gateway(
                tiny_instance, netfaults=_DENSE, hold_factor=100.0
            ) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    response = await client.submit(tiny_instance.queries[0])
                assert response["result"] == "admitted"
                home = tiny_instance.queries[0].home_node
                if all(a["node"] == home for a in response["assignments"]):
                    pytest.skip("query served at home; severing cannot cut it")
                daemon = gateway.netfaults
                for link in tiny_instance.topology.link_delays:
                    if home in link:
                        daemon.link_state.sever(link)
                gateway.instance.paths.recompute(
                    daemon.link_state.effective_delays()
                )
                gateway.refresh_network_statics()
                evicted = daemon._evict_partitioned()
                assert evicted == 1
                assert not gateway._inflight
                assert gateway.state.total_allocated() == 0.0
                gateway.state.check_invariants(
                    [], link_state=daemon.link_state, homes={}
                )

        run(scenario())


def _responses_and_checkpoint(small_topology, tmp_path, tag, **extra):
    """Drive one gateway over a fixed stream; return (responses, bytes)."""
    instance = _serve_instance(small_topology)
    path = tmp_path / f"{tag}.ckpt"

    async def scenario():
        results = []
        async with running_gateway(
            instance, checkpoint_path=str(path), hold_factor=100.0, **extra
        ) as gateway:
            host, port = gateway.address
            factory = QueryFactory(instance, seed=17)
            async with await GatewayClient.connect(host, port) as client:
                for _ in range(25):
                    results.append(await client.submit(factory.make()))
                await client.snapshot()
            counters = dict(gateway.counters)
        return results, counters

    results, counters = run(scenario())
    return results, counters, path.read_bytes()


class TestDisabledParity:
    """Golden pin: dynamics that never fire change nothing, byte for byte."""

    def test_empty_schedule_daemon_is_byte_identical(
        self, small_topology, tmp_path
    ):
        base_res, base_ctr, base_ckpt = _responses_and_checkpoint(
            small_topology, tmp_path, "plain"
        )
        nf_res, nf_ctr, nf_ckpt = _responses_and_checkpoint(
            small_topology, tmp_path, "armed", netfaults=_EMPTY
        )
        assert nf_res == base_res
        assert nf_ctr == base_ctr
        assert nf_ckpt == base_ckpt


class TestGenerationInvalidation:
    def test_gateway_latency_cache_rebuilds(self, small_topology):
        instance = _serve_instance(small_topology)

        async def scenario():
            async with running_gateway(instance, netfaults=_DENSE) as gateway:
                query = instance.queries[0]
                d_id = query.demanded[0]
                before = gateway._latency_vector(query, d_id)
                again = gateway._latency_vector(query, d_id)
                assert again is before  # memoised at generation 0
                daemon = gateway.netfaults
                while daemon.link_state.active_faults == 0:
                    report = await daemon.run_cycle(force=True)
                    assert report.applied >= 1
                after = gateway._latency_vector(query, d_id)
                assert after is not before

        run(scenario())

    def test_router_classification_rederived(self, small_topology):
        """Satellite: the front router's argmin shard classification is
        re-derived from the degraded delays after an epoch bump."""
        instance = _serve_instance(small_topology)
        placement = list(instance.placement_nodes)
        half = len(placement) // 2
        router = FrontRouter(
            instance,
            [
                (("127.0.0.1", 1), placement[:half]),
                (("127.0.0.1", 2), placement[half:]),
            ],
        )
        query = instance.queries[0]
        d_id = query.demanded[0]
        before = router._latency_vector(query, d_id)
        assert router._latency_vector(query, d_id) is before
        degraded = {
            link: delay * 50.0
            for link, delay in instance.topology.link_delays.items()
        }
        instance.paths.recompute(degraded)
        after = router._latency_vector(query, d_id)
        assert after is not before
        assert np.all(after >= before)
        assert np.any(after > before)
        # Heal for the session-scoped topology's other consumers.
        instance.paths.recompute(dict(instance.topology.link_delays))


class TestMobilityTraceMode:
    def test_stationary_until_first_rotation(self, tiny_instance):
        stationary = QueryFactory(tiny_instance, seed=3, period=10)
        mobile = QueryFactory(tiny_instance, seed=3, mode="mobility", period=10)
        for _ in range(10):
            assert mobile.make() == stationary.make()

    def test_homes_churn_after_period(self, tiny_instance):
        stationary = QueryFactory(tiny_instance, seed=3, period=5)
        mobile = QueryFactory(tiny_instance, seed=3, mode="mobility", period=5)
        pairs = [(stationary.make(), mobile.make()) for _ in range(40)]
        churned = [(s, m) for s, m in pairs[5:] if s.home_node != m.home_node]
        assert churned  # the anchor moved at least once after rotation
        for s, m in pairs:
            # Only the home shifts: demand shape is draw-for-draw identical.
            assert m.demanded == s.demanded
            assert m.selectivity == s.selectivity
            assert m.deadline_s == s.deadline_s

    def test_bad_mode_rejected(self, tiny_instance):
        with pytest.raises(ValidationError, match="mode"):
            QueryFactory(tiny_instance, mode="teleport")


class TestSyncGreedyRule:
    def test_serves_from_existing_copy_without_tax(self, tiny_instance):
        from repro.cluster.state import ClusterState

        state = ClusterState(tiny_instance)
        rule = make_sync_greedy_place_pair()
        assignment = rule(state, tiny_instance.queries[0], 0)
        assert assignment is not None

    def test_tax_blocks_remote_replica(self, tiny_instance):
        from repro.cluster.state import ClusterState

        query = tiny_instance.queries[0]
        origin = tiny_instance.dataset(0).origin_node
        # Deadline feasible at the origin, but any *new* copy pays a
        # crushing horizon of delta syncs and fails.
        taxed = make_sync_greedy_place_pair(
            ConsistencyModel(), horizon_days=1e6
        )
        state = ClusterState(tiny_instance)
        assignment = taxed(state, query, 0)
        assert assignment is not None
        assert assignment.node == origin  # only the sunk copy is affordable
