"""Tests for the predictive pre-placement daemon and its planner."""

import asyncio
import contextlib

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.serve import (
    AdmissionGateway,
    GatewayClient,
    GatewayConfig,
    PreplacerConfig,
    QueryFactory,
)
from repro.serve.preplacer import Preplacer, plan_preplacements
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.forecast import region_labels
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_workload
from repro.workload.trace import zipf_weights


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def serve_instance(small_topology):
    return generate_workload(small_topology, spawn_rng(5, "serve"), PaperDefaults())


@contextlib.asynccontextmanager
async def running_gateway(instance, **config):
    gateway = AdmissionGateway(instance, GatewayConfig(**config))
    await gateway.start()
    try:
        yield gateway
    finally:
        if not gateway._closed.is_set():
            await gateway.stop()


def _roster(instance):
    """Region roster + anchors in the daemon's canonical order."""
    labels = region_labels(instance.topology)
    regions, anchors = [], []
    seen = set()
    for node_id in sorted(labels):
        if labels[node_id] not in seen:
            seen.add(labels[node_id])
            regions.append(labels[node_id])
            anchors.append(node_id)
    return tuple(regions), tuple(anchors)


def _origin_map(instance):
    return {d: [instance.dataset(d).origin_node] for d in instance.datasets}


class TestPreplacerConfig:
    def test_defaults_valid(self):
        cfg = PreplacerConfig()
        assert cfg.forecast_config().num_buckets == cfg.num_buckets

    def test_min_window_must_fit_window(self):
        with pytest.raises(ValidationError, match="min_window"):
            PreplacerConfig(window=8, min_window=9)

    def test_threshold_bounds(self):
        with pytest.raises(ValidationError, match="threshold"):
            PreplacerConfig(threshold=1.5)
        with pytest.raises(ValidationError, match="threshold"):
            PreplacerConfig(threshold=-0.1)

    def test_improvement_positive(self):
        with pytest.raises(ValidationError, match="improvement"):
            PreplacerConfig(improvement=0.0)

    def test_estimator_validated_via_forecast(self):
        with pytest.raises(ValidationError, match="estimator"):
            PreplacerConfig(estimator="oracle")

    def test_bucketing_shape(self):
        fc = PreplacerConfig(window=256, num_buckets=8).forecast_config()
        assert fc.bucket == 32

    def test_shard_scoped_gateway_rejected(self):
        with pytest.raises(ValidationError, match="shard"):
            GatewayConfig(predict=PreplacerConfig(), shard_nodes=(1, 2))


class TestPlanPreplacements:
    def test_shape_mismatch_rejected(self, serve_instance):
        regions, anchors = _roster(serve_instance)
        with pytest.raises(ValidationError, match="shape"):
            plan_preplacements(
                serve_instance, regions, anchors,
                np.zeros((1, 1)), _origin_map(serve_instance), [],
            )

    def test_zero_demand_plans_nothing(self, serve_instance):
        regions, anchors = _roster(serve_instance)
        shape = (len(regions), len(serve_instance.datasets))
        steps, info = plan_preplacements(
            serve_instance, regions, anchors,
            np.zeros(shape), _origin_map(serve_instance), [],
        )
        assert not steps
        assert info["reason"] == "no-demand"

    def test_below_threshold_plans_nothing(self, serve_instance):
        regions, anchors = _roster(serve_instance)
        shape = (len(regions), len(serve_instance.datasets))
        # Uniform demand: every cell's share is 1/(R×N), far below 2%.
        steps, info = plan_preplacements(
            serve_instance, regions, anchors,
            np.ones(shape), _origin_map(serve_instance), [],
        )
        assert not steps
        assert info["reason"] == "no-candidates"

    def _hot_cell_plan(self, instance, config=None, replica_map=None):
        regions, anchors = _roster(instance)
        dataset_ids = sorted(instance.datasets)
        predicted = np.zeros((len(regions), len(dataset_ids)))
        predicted[4, 0] = 10.0
        return plan_preplacements(
            instance, regions, anchors, predicted,
            replica_map or _origin_map(instance), [], config,
        ), (regions, anchors, dataset_ids)

    def test_hot_cell_earns_add_only_step(self, serve_instance):
        (steps, info), (regions, anchors, ids) = self._hot_cell_plan(serve_instance)
        assert len(steps) == 1
        step = steps[0]
        assert step.dataset_id == ids[0]
        assert step.drop_node is None  # add-only, never drops
        origin = serve_instance.dataset(ids[0]).origin_node
        assert step.ship_from == origin
        assert step.add_node != origin
        assert step.volume_gb == serve_instance.dataset(ids[0]).volume_gb
        assert step.ship_cost_s >= 0.0

    def test_step_improves_probe_latency(self, serve_instance):
        (steps, _), (regions, anchors, ids) = self._hot_cell_plan(serve_instance)
        step = steps[0]
        dataset = serve_instance.dataset(step.dataset_id)
        anchor = anchors[4]
        home_vec = serve_instance.home_delay_vectors.get(anchor)
        if home_vec is None:
            home_vec = serve_instance.paths.placement_delays_to(anchor)
        lat = dataset.volume_gb * (serve_instance.proc_delays + 0.7 * home_vec)
        idx = serve_instance.node_index
        assert lat[idx[step.add_node]] < lat[idx[step.ship_from]]

    def test_respects_slot_slack(self, serve_instance):
        # Dataset already at K - slot_slack copies: no further adds.
        ids = sorted(serve_instance.datasets)
        origin = serve_instance.dataset(ids[0]).origin_node
        others = [v for v in serve_instance.placement_nodes if v != origin]
        full_map = _origin_map(serve_instance)
        full_map[ids[0]] = [origin] + others[: serve_instance.max_replicas - 2]
        (steps, info), _ = self._hot_cell_plan(
            serve_instance, replica_map=full_map
        )
        assert not steps
        assert info["reason"] == "no-candidates"

    def test_churn_cap_defers(self, serve_instance):
        config = PreplacerConfig(max_preplace_gb=1e-6)
        (steps, info), _ = self._hot_cell_plan(serve_instance, config=config)
        assert not steps
        assert info["deferred"] == 1

    def test_max_adds_per_dataset(self, serve_instance):
        regions, anchors = _roster(serve_instance)
        ids = sorted(serve_instance.datasets)
        predicted = np.zeros((len(regions), len(ids)))
        # The same dataset is hot from three regions.
        predicted[2, 0] = predicted[5, 0] = predicted[8, 0] = 10.0
        steps, _ = plan_preplacements(
            serve_instance, regions, anchors, predicted,
            _origin_map(serve_instance), [],
            PreplacerConfig(max_adds_per_dataset=1),
        )
        assert len(steps) == 1

    def test_deterministic(self, serve_instance):
        regions, anchors = _roster(serve_instance)
        ids = sorted(serve_instance.datasets)
        rng = spawn_rng(7, "pred")
        predicted = rng.random((len(regions), len(ids))) * 5.0
        make = lambda: plan_preplacements(
            serve_instance, regions, anchors, predicted,
            _origin_map(serve_instance), [],
        )
        assert make()[0] == make()[0]

    def test_down_candidates_excluded(self, serve_instance):
        (baseline, _), (regions, anchors, ids) = self._hot_cell_plan(serve_instance)
        target = baseline[0].add_node
        regions2, anchors2 = _roster(serve_instance)
        predicted = np.zeros((len(regions2), len(ids)))
        predicted[4, 0] = 10.0
        steps, _ = plan_preplacements(
            serve_instance, regions2, anchors2, predicted,
            _origin_map(serve_instance), [target],
        )
        assert all(s.add_node != target for s in steps)


class TestQueryFactoryTraceModes:
    def test_unknown_mode_rejected(self, serve_instance):
        with pytest.raises(ValidationError, match="mode"):
            QueryFactory(serve_instance, mode="sawtooth")

    def test_stationary_path_unchanged(self, serve_instance):
        plain = QueryFactory(serve_instance, seed=4)
        explicit = QueryFactory(serve_instance, seed=4, mode="stationary")
        for _ in range(50):
            assert plain.make() == explicit.make()

    def test_flash_crowd_stationary_until_period(self, serve_instance):
        plain = QueryFactory(serve_instance, seed=4)
        flash = QueryFactory(serve_instance, seed=4, mode="flash-crowd", period=30)
        for _ in range(30):
            assert plain.make() == flash.make()
        # After the ramp begins the streams diverge in demand, and each
        # stays deterministic for its seed.
        post_flash = [flash.make() for _ in range(60)]
        assert [plain.make() for _ in range(60)] != post_flash
        replay = QueryFactory(serve_instance, seed=4, mode="flash-crowd", period=30)
        assert [replay.make() for _ in range(90)][30:] == post_flash

    def test_flash_crowd_concentrates_on_cold_dataset(self, serve_instance):
        factory = QueryFactory(
            serve_instance, seed=4, mode="flash-crowd", period=20
        )
        target_rank = int(np.argmin(factory._weights))
        target = sorted(serve_instance.datasets)[target_rank]
        pre = [factory.make() for _ in range(20)]
        # Skip the ramp, sample the saturated flash regime.
        for _ in range(10):
            factory.make()
        post = [factory.make() for _ in range(60)]
        share_pre = sum(target in q.demanded for q in pre) / len(pre)
        share_post = sum(target in q.demanded for q in post) / len(post)
        assert share_post > max(0.8, share_pre + 0.2)

    def test_burst_alternates_phases(self, serve_instance):
        factory = QueryFactory(serve_instance, seed=4, mode="burst", period=25)
        base = factory._weights_at(0)
        hot = factory._weights_at(25)
        cooled = factory._weights_at(50)
        np.testing.assert_array_equal(base, factory._weights)
        np.testing.assert_array_equal(cooled, base)
        assert hot.max() > base.max()
        assert hot.sum() == pytest.approx(1.0)

    def test_diurnal_rotates_full_turn(self, serve_instance):
        period = 30
        factory = QueryFactory(
            serve_instance, seed=4, mode="diurnal", period=period
        )
        n = len(factory._weights)
        start = factory._weights_at(0)
        # One full turn every 2 × period draws.
        np.testing.assert_array_equal(factory._weights_at(2 * period), start)
        mid = factory._weights_at(period)
        np.testing.assert_allclose(np.sort(mid), np.sort(start))
        assert not np.array_equal(mid, start)

    def test_rotate_permutes_weight_vector(self, serve_instance):
        plain = QueryFactory(serve_instance, seed=3)
        rotated = QueryFactory(serve_instance, seed=3, rotate=4)
        # Same dataset support, same multiset of weights, shifted ranks.
        assert plain._dataset_ids == rotated._dataset_ids
        np.testing.assert_allclose(
            np.sort(plain._weights), np.sort(rotated._weights)
        )
        np.testing.assert_array_equal(
            np.roll(plain._weights, 4), rotated._weights
        )
        assert not np.array_equal(plain._weights, rotated._weights)


class TestPreplacerDaemon:
    def _gateway_stub(self, instance):
        """The daemon only reads instance/state/_inflight off the gateway."""

        class Stub:
            pass

        stub = Stub()
        stub.instance = instance
        stub.state = ClusterState(instance)
        stub._inflight = {}
        return stub

    def test_observe_feeds_forecaster(self, serve_instance):
        pre = Preplacer(self._gateway_stub(serve_instance))
        factory = QueryFactory(serve_instance, seed=2)
        q = factory.make()
        pre.observe(q)
        assert pre.forecaster.observed == len(q.demanded)

    def test_observe_unknown_home_ignored(self, serve_instance):
        import dataclasses

        pre = Preplacer(self._gateway_stub(serve_instance))
        q = dataclasses.replace(
            QueryFactory(serve_instance, seed=2).make(), home_node=10_000
        )
        pre.observe(q)  # must not raise
        assert pre.forecaster.observed == 0

    def test_cycle_gated_until_min_window(self, serve_instance):
        pre = Preplacer(
            self._gateway_stub(serve_instance),
            PreplacerConfig(min_window=50),
        )
        factory = QueryFactory(serve_instance, seed=2)
        pre.observe(factory.make())
        report = run(pre.run_cycle())
        assert report.reason == "window-too-small"
        assert not report.preplaced

    def test_forced_cycle_applies_adds_transactionally(self, serve_instance):
        stub = self._gateway_stub(serve_instance)
        pre = Preplacer(stub, PreplacerConfig(window=10_000, min_window=10_000))
        factory = QueryFactory(
            serve_instance, seed=8, mode="flash-crowd", period=10
        )
        for _ in range(40):
            pre.observe(factory.make())
        before = stub.state.replicas.total_replicas()
        report = run(pre.run_cycle(force=True))
        assert report.applied > 0
        assert report.rolled_back == 0
        after = stub.state.replicas.total_replicas()
        assert after == before + report.applied
        stub.state.check_invariants(())
        # Re-running on the same forecast converges: the copies exist now.
        again = run(pre.run_cycle(force=True))
        assert again.applied < report.applied or again.reason == "no-candidates"

    def test_status_payload(self, serve_instance):
        pre = Preplacer(self._gateway_stub(serve_instance))
        payload = pre.status()
        assert payload["cycles"] == 0
        assert payload["observed"] == 0
        assert payload["estimator"] == "ewma"
        assert payload["last_cycle"] is None
        run(pre.run_cycle())
        payload = pre.status()
        assert payload["cycles"] == 1
        assert payload["last_cycle"]["reason"] == "window-too-small"


class TestPredictProtocol:
    def test_predict_not_enabled_errors(self, serve_instance):
        async def scenario():
            async with running_gateway(serve_instance) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    response = await client.predict()
                    assert response["ok"] is False
                    assert "not enabled" in response["error"]

        run(scenario())

    def test_predict_over_the_wire(self, serve_instance):
        async def scenario():
            config = PreplacerConfig(interval_s=1e9, min_window=4)
            async with running_gateway(
                serve_instance, hold_factor=100.0, predict=config
            ) as gateway:
                host, port = gateway.address
                factory = QueryFactory(
                    serve_instance, seed=8, mode="flash-crowd", period=10
                )
                async with await GatewayClient.connect(host, port) as client:
                    for _ in range(30):
                        await client.submit(factory.make())
                    report = await client.predict(force=True)
                    assert report["ok"] is True
                    assert report["applied"] > 0
                    assert report["preplaced"] is True
                    status = await client.status()
                    predict = status["predict"]
                    assert predict["preplaced_steps"] == report["applied"]
                    rendered = GatewayClient.render_status(status)
                    assert "predict:" in rendered
                gateway.state.check_invariants(
                    tuple(
                        a for group in gateway._inflight.values() for a in group
                    )
                )

        run(scenario())


class TestPreplacerGoldenParity:
    """An enabled-but-gated predictor is invisible byte-for-byte.

    Same strictly-sequential stream twice: plain gateway vs. predictor
    enabled with an unreachable ``min_window`` (fast daemon interval plus
    explicit unforced cycles mid-stream).  Observation only mutates the
    forecaster, never cluster state, so every decision, every counter,
    and the final checkpoint must match the baseline exactly.
    """

    def _drive(self, serve_instance, path, predict):
        async def scenario():
            results = []
            async with running_gateway(
                serve_instance,
                hold_factor=100.0,
                checkpoint_path=str(path),
                predict=predict,
            ) as gateway:
                host, port = gateway.address
                factory = QueryFactory(serve_instance, seed=8)
                async with await GatewayClient.connect(host, port) as client:
                    for i in range(40):
                        response = await client.submit(factory.make())
                        results.append(response["result"])
                        if predict is not None and i in (19, 39):
                            cycle = await client.predict()
                            assert cycle["ok"] is True
                            assert cycle["reason"] == "window-too-small"
                status = gateway.status()
                await gateway.stop()  # writes the final checkpoint
                return results, status, dict(gateway.counters)

        return run(scenario())

    def test_gated_predictor_is_bit_identical(self, serve_instance, tmp_path):
        plain_path = tmp_path / "plain.ckpt.json"
        predict_path = tmp_path / "predict.ckpt.json"
        config = PreplacerConfig(
            interval_s=0.01, window=10_000, min_window=10_000
        )

        plain_results, plain_status, plain_counters = self._drive(
            serve_instance, plain_path, None
        )
        predict_results, predict_status, predict_counters = self._drive(
            serve_instance, predict_path, config
        )

        assert predict_results == plain_results
        assert predict_counters == plain_counters
        assert predict_path.read_bytes() == plain_path.read_bytes()

        # The daemon ran (explicit cycles at least) but placed nothing.
        assert "predict" not in plain_status
        daemon = predict_status["predict"]
        assert daemon["cycles"] >= 2
        assert daemon["preplaced_steps"] == 0
        assert daemon["preplaced_gb"] == 0.0
        assert daemon["observed"] > 0
