"""Tests for the gateway wire protocol."""

import json

import pytest

from repro.serve import decode_message, encode_message
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    error_response,
    parse_submit_query,
)


class TestFraming:
    def test_encode_is_one_line(self):
        data = encode_message({"op": "status", "id": 1})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1

    def test_round_trip(self):
        payload = {"op": "submit", "id": 42, "query": {"query_id": 7}}
        assert decode_message(encode_message(payload)) == payload

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_message(b"not json\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_message(b"[1, 2]\n")

    def test_oversized_line_rejected(self):
        line = b"x" * (MAX_LINE_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_message(line)


class TestRequests:
    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_request(encode_message({"op": "teleport", "id": 1}))

    def test_missing_id_rejected(self):
        with pytest.raises(ProtocolError, match="id"):
            decode_request(encode_message({"op": "status"}))

    def test_valid_request_passes(self):
        request = decode_request(encode_message({"op": "status", "id": 9}))
        assert request["op"] == "status"

    def test_submit_without_query_rejected(self):
        with pytest.raises(ProtocolError, match="query"):
            parse_submit_query({"op": "submit", "id": 1})

    def test_submit_with_invalid_query_rejected(self):
        with pytest.raises(ProtocolError, match="invalid query"):
            parse_submit_query({"op": "submit", "id": 1, "query": {"query_id": 3}})

    def test_submit_query_parsed(self):
        query = parse_submit_query(
            {
                "op": "submit",
                "id": 1,
                "query": {
                    "query_id": 3,
                    "home_node": 0,
                    "demanded": [0],
                    "selectivity": [0.5],
                    "compute_rate": 1.0,
                    "deadline_s": 2.0,
                },
            }
        )
        assert query.query_id == 3
        assert query.demanded == (0,)


class TestErrorResponse:
    def test_shape(self):
        response = error_response(5, "boom")
        assert response == {"id": 5, "ok": False, "error": "boom"}
        json.dumps(response)
