"""Unit tests for the live re-optimization daemon."""

import asyncio
import contextlib
import dataclasses

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.core.metrics import InvariantViolation
from repro.core.migration import MigrationStep
from repro.core.primal_dual import ApproG
from repro.serve import (
    AdmissionGateway,
    GatewayClient,
    GatewayConfig,
    QueryFactory,
    ReoptimizerConfig,
)
from repro.serve.reoptimizer import (
    Reoptimizer,
    apply_step,
    build_window_instance,
    demand_weights,
    plan_cycle,
    total_variation,
)
from repro.util.validation import ValidationError


def run(coro):
    return asyncio.run(coro)


@contextlib.asynccontextmanager
async def running_gateway(instance, **config):
    gateway = AdmissionGateway(instance, GatewayConfig(**config))
    await gateway.start()
    try:
        yield gateway
    finally:
        if not gateway._closed.is_set():
            await gateway.stop()


@pytest.fixture(scope="module")
def serve_instance(small_topology):
    from repro.util.rng import spawn_rng
    from repro.workload.params import PaperDefaults
    from repro.workload.queries import generate_workload

    return generate_workload(small_topology, spawn_rng(5, "serve"), PaperDefaults())


class TestConfigValidation:
    def test_bad_drift_threshold(self):
        with pytest.raises(ValidationError, match="drift_threshold"):
            ReoptimizerConfig(drift_threshold=1.5)

    def test_bad_planner(self):
        with pytest.raises(ValidationError, match="planner"):
            ReoptimizerConfig(planner="oracle")

    def test_min_window_above_window(self):
        with pytest.raises(ValidationError, match="min_window"):
            ReoptimizerConfig(window=8, min_window=9)

    def test_negative_cap(self):
        with pytest.raises(ValidationError, match="max_migration_gb"):
            ReoptimizerConfig(max_migration_gb=-1.0)

    def test_bad_moves(self):
        with pytest.raises(ValidationError, match="max_moves_per_dataset"):
            ReoptimizerConfig(max_moves_per_dataset=0)


class TestDemandWindow:
    def test_weights_count_demand_pairs(self, tiny_instance):
        q0, q1 = tiny_instance.queries[0], tiny_instance.queries[1]
        weights = demand_weights([q0, q1], [0, 1])
        # q0 demands {0}, q1 demands {0, 1}: dataset 0 twice, dataset 1 once.
        assert weights == pytest.approx([2 / 3, 1 / 3])

    def test_empty_window_is_uniform(self):
        assert demand_weights([], [0, 1, 2, 3]) == pytest.approx([0.25] * 4)

    def test_total_variation_bounds(self):
        assert total_variation(np.array([1.0, 0.0]), np.array([1.0, 0.0])) == 0.0
        assert total_variation(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_window_instance_renumbers_dense(self, serve_instance):
        factory = QueryFactory(serve_instance, seed=1)
        queries = [factory.make() for _ in range(7)]
        shuffled = [dataclasses.replace(q, query_id=q.query_id + 100) for q in queries]
        win = build_window_instance(serve_instance, shuffled)
        assert [q.query_id for q in win.queries] == list(range(7))
        assert win.max_replicas == serve_instance.max_replicas
        assert win.topology is serve_instance.topology

    def test_factory_rotate_shifts_popularity(self, serve_instance):
        plain = QueryFactory(serve_instance, seed=3)
        shifted = QueryFactory(serve_instance, seed=3, rotate=3)
        ids = sorted(serve_instance.datasets)
        a = demand_weights([plain.make() for _ in range(200)], ids)
        b = demand_weights([shifted.make() for _ in range(200)], ids)
        assert total_variation(a, b) > 0.1


class TestPlanCycle:
    def test_empty_window_plans_nothing(self, serve_instance):
        plan, info = plan_cycle(serve_instance, [], {}, [], ReoptimizerConfig())
        assert not plan and info["reason"] == "window-too-small"

    def test_drifted_window_finds_gain(self, serve_instance):
        factory = QueryFactory(serve_instance, seed=5)
        warm = build_window_instance(
            serve_instance, [factory.make() for _ in range(30)]
        )
        state = ClusterState(warm)
        ApproG().solve_on_state(warm, state)
        drifted = QueryFactory(serve_instance, seed=5, rotate=4)
        window = [drifted.make() for _ in range(30)]
        plan, info = plan_cycle(
            serve_instance, window, state.replicas.replica_map(), [],
            ReoptimizerConfig(max_migration_gb=100.0, max_moves_per_dataset=None),
        )
        assert info["gain_gb"] > 0
        assert plan.steps
        assert plan.migration_gb <= 100.0 * (1.0 + 1e-9)

    def test_respects_moves_budget(self, serve_instance):
        factory = QueryFactory(serve_instance, seed=5)
        warm = build_window_instance(
            serve_instance, [factory.make() for _ in range(30)]
        )
        state = ClusterState(warm)
        ApproG().solve_on_state(warm, state)
        drifted = QueryFactory(serve_instance, seed=5, rotate=4)
        window = [drifted.make() for _ in range(30)]
        plan, _info = plan_cycle(
            serve_instance, window, state.replicas.replica_map(), [],
            ReoptimizerConfig(max_migration_gb=100.0, max_moves_per_dataset=2),
        )
        mutations: dict[int, int] = {}
        for step in plan.steps:
            mutations[step.dataset_id] = (
                mutations.get(step.dataset_id, 0)
                + (step.add_node is not None)
                + (step.drop_node is not None)
            )
        assert all(count <= 2 for count in mutations.values())

    def test_lp_planner_runs(self, serve_instance):
        factory = QueryFactory(serve_instance, seed=5)
        window = [factory.make() for _ in range(15)]
        plan, info = plan_cycle(
            serve_instance, window, {}, [],
            ReoptimizerConfig(planner="lp", max_migration_gb=100.0),
        )
        assert info["target_gb"] > 0
        for step in plan.steps:
            if step.add_node is not None:
                assert step.ship_from is not None


class TestApplyStep:
    @pytest.fixture()
    def state(self, tiny_instance):
        return ClusterState(tiny_instance)

    def test_pure_add_applies_and_ships_nothing_new(self, tiny_instance, state):
        origin = tiny_instance.dataset(0).origin_node
        target = next(
            v for v in tiny_instance.placement_nodes if v != origin
        )
        step = MigrationStep(0, target, None, 2.0, origin, 0.1)
        assert apply_step(state, step) == "applied"
        assert state.replicas.has(0, target)

    def test_origin_is_never_dropped(self, tiny_instance, state):
        origin = tiny_instance.dataset(0).origin_node
        step = MigrationStep(0, None, origin)
        assert apply_step(state, step) == "skipped:origin-copy"
        assert state.replicas.has(0, origin)

    def test_already_placed_is_skipped(self, tiny_instance, state):
        origin = tiny_instance.dataset(0).origin_node
        step = MigrationStep(0, origin, None, 2.0, origin, 0.0)
        assert apply_step(state, step) == "skipped:already-placed"

    def test_k_bound_refuses_bare_add(self, tiny_instance, state):
        # tiny_instance has K=2: origin + one copy exhausts the slots.
        origin = tiny_instance.dataset(0).origin_node
        others = [v for v in tiny_instance.placement_nodes if v != origin]
        state.replicas.place(0, others[0])
        step = MigrationStep(0, others[1], None, 2.0, origin, 0.1)
        assert apply_step(state, step) == "skipped:k-bound"

    def test_move_swaps_at_k_bound(self, tiny_instance, state):
        origin = tiny_instance.dataset(0).origin_node
        others = [v for v in tiny_instance.placement_nodes if v != origin]
        state.replicas.place(0, others[0])
        step = MigrationStep(0, others[1], others[0], 2.0, origin, 0.1)
        assert apply_step(state, step) == "applied"
        assert state.replicas.has(0, others[1])
        assert not state.replicas.has(0, others[0])

    def test_in_use_copy_is_not_dropped(self, tiny_instance, state):
        query = tiny_instance.queries[0]
        dataset = tiny_instance.dataset(0)
        origin = dataset.origin_node
        target = next(v for v in tiny_instance.placement_nodes if v != origin)
        assignment = state.serve(query, dataset, target)
        step = MigrationStep(0, None, target)
        assert apply_step(state, step, [assignment]) == "skipped:replica-in-use"
        assert apply_step(state, step) == "applied"  # released: drop is fine

    def test_last_live_copy_survives(self, tiny_instance, state):
        origin = tiny_instance.dataset(0).origin_node
        target = next(v for v in tiny_instance.placement_nodes if v != origin)
        state.replicas.place(0, target)
        state.mark_down(origin)  # origin record survives but is not live
        step = MigrationStep(0, None, target)
        assert apply_step(state, step) == "skipped:last-live-copy"

    def test_down_add_node_is_skipped(self, tiny_instance, state):
        origin = tiny_instance.dataset(0).origin_node
        target = next(v for v in tiny_instance.placement_nodes if v != origin)
        state.mark_down(target)
        step = MigrationStep(0, target, None, 2.0, origin, 0.1)
        assert apply_step(state, step) == "skipped:add-node-down"

    def test_invariant_violation_rolls_back(self, tiny_instance, state):
        # A non-placement node passes the permissive ReplicaStore but
        # fails check_invariants inside the transaction: full rollback.
        before = state.replicas.replica_map()
        bogus = MigrationStep(0, 999_999, None, 2.0, None, 0.0)
        assert apply_step(state, bogus) == "rolled-back"
        assert state.replicas.replica_map() == before
        state.check_invariants()


class TestDaemon:
    def test_observe_bounds_window(self, serve_instance):
        gateway = AdmissionGateway(
            serve_instance,
            GatewayConfig(reopt=ReoptimizerConfig(window=4, min_window=2)),
        )
        factory = QueryFactory(serve_instance, seed=2)
        for _ in range(10):
            gateway.reoptimizer.observe(factory.make())
        assert len(gateway.reoptimizer._window) == 4

    def test_small_window_cycle_is_noop(self, serve_instance):
        gateway = AdmissionGateway(
            serve_instance, GatewayConfig(reopt=ReoptimizerConfig(min_window=8))
        )
        report = run(gateway.reoptimizer.run_cycle())
        assert report.reason == "window-too-small"
        assert not report.migrated

    def test_first_window_sets_reference_then_gates_on_drift(self, serve_instance):
        gateway = AdmissionGateway(
            serve_instance,
            GatewayConfig(reopt=ReoptimizerConfig(window=32, min_window=8)),
        )
        daemon = gateway.reoptimizer
        factory = QueryFactory(serve_instance, seed=2)
        for _ in range(32):
            daemon.observe(factory.make())
        first = run(daemon.run_cycle())
        assert first.reason == "reference-set"
        for _ in range(16):  # same distribution: drift stays low
            daemon.observe(factory.make())
        second = run(daemon.run_cycle())
        assert second.reason == "drift-below-threshold"
        assert second.drift < daemon.config.drift_threshold

    def test_forced_cycle_migrates_toward_demand(self, serve_instance):
        gateway = AdmissionGateway(
            serve_instance,
            GatewayConfig(
                reopt=ReoptimizerConfig(
                    window=64, min_window=8, max_migration_gb=200.0,
                    max_moves_per_dataset=None,
                )
            ),
        )
        daemon = gateway.reoptimizer
        factory = QueryFactory(serve_instance, seed=7, rotate=3)
        for _ in range(40):
            daemon.observe(factory.make())
        report = run(daemon.run_cycle(force=True))
        # Origin-only replicas vs a concentrated Zipf window: replanning
        # must find gain and the executor must apply it.
        assert report.gain_gb > 0
        assert report.applied > 0
        assert report.migration_gb <= 200.0 * (1.0 + 1e-9)
        gateway.state.check_invariants()
        status = daemon.status()
        assert status["migrated_steps"] == report.applied
        assert status["last_cycle"]["cycle"] == report.cycle

    def test_cycle_reports_accumulate_in_history(self, serve_instance):
        gateway = AdmissionGateway(
            serve_instance, GatewayConfig(reopt=ReoptimizerConfig(history=2))
        )
        daemon = gateway.reoptimizer
        for _ in range(3):
            run(daemon.run_cycle())
        assert len(daemon._history) == 2
        assert daemon.status()["cycles"] == 3


class TestProtocol:
    def test_reopt_op_disabled_errors(self, tiny_instance):
        async def scenario():
            async with running_gateway(tiny_instance) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    response = await client.reopt()
                assert response["ok"] is False
                assert "not enabled" in response["error"]
                assert "reopt" not in gateway.status()

        run(scenario())

    def test_reopt_op_runs_cycle(self, serve_instance):
        async def scenario():
            async with running_gateway(
                serve_instance,
                reopt=ReoptimizerConfig(interval_s=3600.0, min_window=4),
            ) as gateway:
                host, port = gateway.address
                factory = QueryFactory(serve_instance, seed=9)
                async with await GatewayClient.connect(host, port) as client:
                    for _ in range(8):
                        await client.submit(factory.make())
                    response = await client.reopt()
                    assert response["ok"] is True
                    assert response["cycle"] >= 1
                    assert response["observed"] == 8
                    status = await client.status()
                assert status["reopt"]["cycles"] >= 1
                assert gateway.status()["reopt"]["window"] == 8

        run(scenario())

    def test_forced_reopt_over_wire(self, serve_instance):
        async def scenario():
            async with running_gateway(
                serve_instance,
                reopt=ReoptimizerConfig(
                    interval_s=3600.0, min_window=4, max_migration_gb=200.0,
                    max_moves_per_dataset=None,
                ),
            ) as gateway:
                host, port = gateway.address
                factory = QueryFactory(serve_instance, seed=9, rotate=4)
                async with await GatewayClient.connect(host, port) as client:
                    for _ in range(12):
                        await client.submit(factory.make())
                    response = await client.reopt(force=True)
                assert response["ok"] is True
                assert response["reason"] in ("", "gain-below-threshold", "no-diff")
                gateway.state.check_invariants(
                    [a for g in gateway._inflight.values() for a in g]
                )

        run(scenario())

    def test_daemon_task_spawned_and_cancelled(self, serve_instance):
        async def scenario():
            async with running_gateway(
                serve_instance, reopt=ReoptimizerConfig(interval_s=3600.0)
            ) as gateway:
                assert len(gateway._tasks) == 2  # worker + reopt daemon
            assert all(t.cancelled() or t.done() for t in gateway._tasks or [])

        run(scenario())


class TestCrashToleranthold:
    def test_release_after_crash_eviction_is_silent(self, tiny_instance):
        async def scenario():
            async with running_gateway(tiny_instance, hold_factor=100.0) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    response = await client.submit(tiny_instance.queries[0])
                assert response["result"] == "admitted"
                victim = response["assignments"][0]["node"]
                gateway.state.mark_down(victim)
                gateway.state.evict_allocations(victim)
                gateway.state.drop_replicas(victim)
                # The hold timer now points at an evicted tag; releasing
                # must not raise (it used to CapacityError in the loop).
                q_id = tiny_instance.queries[0].query_id
                gateway._release_query(q_id)
                assert q_id not in gateway._inflight

        run(scenario())
