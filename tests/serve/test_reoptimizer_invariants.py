"""Property-based invariant suite for the live re-optimizer.

Hypothesis draws drifting query mixes (Zipf popularity rotated by a
random offset), churn-cap settings, and fault schedules (crashes and
recoveries interleaved with the migration plan's steps), then asserts
the serving invariants — capacity, the K-replica bound, origin-ledger
survival, crash cleanliness, and in-flight/deadline consistency — after
*every* applied, rolled-back, or skipped migration step, after every
injected mid-plan rollback, and after every injected crash.  The checks
are :meth:`repro.cluster.state.ClusterState.check_invariants`, the live
counterpart of ``verify_solution``.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.state import ClusterState
from repro.core.instance import ProblemInstance
from repro.core.primal_dual import ApproG
from repro.serve.reoptimizer import (
    ReoptimizerConfig,
    apply_step,
    build_window_instance,
    plan_cycle,
)
from repro.serve.client import QueryFactory
from repro.topology.twotier import TwoTierConfig, generate_two_tier
from repro.util.rng import spawn_rng
from repro.workload.datasets import generate_datasets
from repro.workload.params import PaperDefaults

TOPOLOGY = generate_two_tier(
    TwoTierConfig(
        num_data_centers=2,
        num_cloudlets=6,
        num_switches=2,
        num_base_stations=2,
    ),
    seed=2,
)
PARAMS = PaperDefaults()
DATASETS = generate_datasets(TOPOLOGY, spawn_rng(11, "ds"), PARAMS, count=8)
#: Query-less carrier of the topology + datasets; windows are built on it.
BASE = ProblemInstance(
    topology=TOPOLOGY, datasets=DATASETS, queries=(), max_replicas=3
)
PLACEMENT = tuple(BASE.placement_nodes)

PROPERTY = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _queries(seed: int, rotate: int, count: int):
    factory = QueryFactory(BASE, seed=seed, rotate=rotate)
    return [factory.make() for _ in range(count)]


def _crash(state: ClusterState, node: int, inflight: list) -> None:
    """Inject one crash with the fault injector's exact semantics."""
    state.mark_down(node)
    state.evict_allocations(node)
    state.drop_replicas(node)
    inflight[:] = [a for a in inflight if a.node != node]


@st.composite
def scenarios(draw):
    """One serving scenario: stationary warm-up, drifted window, faults."""
    seed = draw(st.integers(0, 999))
    rotate = draw(st.integers(1, len(DATASETS) - 1))
    n_initial = draw(st.integers(5, 20))
    n_window = draw(st.integers(5, 25))
    cap = draw(st.floats(5.0, 120.0))
    moves = draw(st.one_of(st.none(), st.integers(1, 4)))
    # (step index, node) pairs: crash that node just before that step.
    crashes = draw(
        st.lists(
            st.tuples(st.integers(0, 24), st.sampled_from(PLACEMENT)),
            max_size=2,
            unique_by=lambda c: c[1],
        )
    )
    # Steps before which an uncommitted transaction is opened and rolled
    # back (exercising rollback interleaved with crash eviction).
    rollbacks = draw(st.lists(st.integers(0, 24), max_size=2, unique=True))
    recover = draw(st.booleans())
    return seed, rotate, n_initial, n_window, cap, moves, crashes, rollbacks, recover


def _run_scenario(scenario) -> tuple[ClusterState, list, float, float]:
    """Drive one scenario, checking invariants at every boundary.

    Returns (state, inflight, applied GB, cap) for scenario-specific
    assertions on top of the always-on invariant checks.
    """
    seed, rotate, n_initial, n_window, cap, moves, crashes, rollbacks, recover = (
        scenario
    )
    warmup = build_window_instance(BASE, _queries(seed, 0, n_initial))
    state = ClusterState(warmup)
    solution = ApproG().solve_on_state(warmup, state)
    inflight = [a for a in solution.assignments.values()]
    deadlines = {q.query_id: q.deadline_s for q in warmup.queries}
    state.check_invariants(inflight, deadlines=deadlines)

    window = _queries(seed + 1, rotate, n_window)
    config = ReoptimizerConfig(max_migration_gb=cap, max_moves_per_dataset=moves)
    plan, _info = plan_cycle(
        BASE, window, state.replicas.replica_map(), sorted(state.down_nodes()), config
    )

    crash_at = {i: v for i, v in crashes}
    applied_gb = 0.0
    for i, step in enumerate(plan.steps):
        victim = crash_at.get(i)
        if victim is not None and state.is_up(victim):
            _crash(state, victim, inflight)
            state.check_invariants(inflight, deadlines=deadlines)
        if i in rollbacks:
            # An admission transaction that aborts mid-plan: nothing it
            # did may survive, and no crash eviction may be undone.
            with state.transaction():
                if inflight:
                    state.release(inflight[0])
            state.check_invariants(inflight, deadlines=deadlines)
        outcome = apply_step(state, step, inflight)
        assert outcome == "applied" or outcome.startswith(
            ("rolled-back", "skipped:")
        )
        if outcome == "applied":
            applied_gb += step.volume_gb
        state.check_invariants(inflight, deadlines=deadlines)
    if recover:
        for node in sorted(state.down_nodes()):
            state.mark_up(node)
        state.check_invariants(inflight, deadlines=deadlines)
    return state, inflight, applied_gb, cap


@PROPERTY
@given(scenarios())
def test_invariants_hold_after_every_step(scenario):
    _run_scenario(scenario)


@PROPERTY
@given(scenarios())
def test_applied_volume_never_exceeds_cycle_cap(scenario):
    _state, _inflight, applied_gb, cap = _run_scenario(scenario)
    assert applied_gb <= cap * (1.0 + 1e-9)


@PROPERTY
@given(scenarios())
def test_origins_survive_any_plan_and_fault_mix(scenario):
    state, _inflight, _gb, _cap = _run_scenario(scenario)
    for d_id in BASE.datasets:
        assert state.replicas.origin(d_id) in state.replicas.nodes(d_id)


@PROPERTY
@given(scenarios())
def test_replica_bound_holds_after_migration(scenario):
    state, _inflight, _gb, _cap = _run_scenario(scenario)
    for d_id in BASE.datasets:
        assert len(state.replicas.nodes(d_id)) <= BASE.max_replicas


@PROPERTY
@given(scenarios())
def test_replaying_the_plan_is_idempotent(scenario):
    """A plan applied against state it already shaped must be a no-op."""
    (seed, rotate, n_initial, n_window, cap, moves, *_rest) = scenario
    warmup = build_window_instance(BASE, _queries(seed, 0, n_initial))
    state = ClusterState(warmup)
    solution = ApproG().solve_on_state(warmup, state)
    inflight = list(solution.assignments.values())
    window = _queries(seed + 1, rotate, n_window)
    config = ReoptimizerConfig(max_migration_gb=cap, max_moves_per_dataset=moves)
    plan, _info = plan_cycle(
        BASE, window, state.replicas.replica_map(), [], config
    )
    for step in plan.steps:
        apply_step(state, step, inflight)
    before = state.replicas.replica_map()
    for step in plan.steps:
        outcome = apply_step(state, step, inflight)
        assert outcome != "applied"
        state.check_invariants(inflight)
    assert state.replicas.replica_map() == before


@PROPERTY
@given(scenarios())
def test_plans_are_deterministic(scenario):
    (seed, rotate, n_initial, n_window, cap, moves, *_rest) = scenario
    warmup = build_window_instance(BASE, _queries(seed, 0, n_initial))
    state = ClusterState(warmup)
    ApproG().solve_on_state(warmup, state)
    window = _queries(seed + 1, rotate, n_window)
    config = ReoptimizerConfig(max_migration_gb=cap, max_moves_per_dataset=moves)
    live = state.replicas.replica_map()
    first, info_a = plan_cycle(BASE, window, live, [], config)
    second, info_b = plan_cycle(BASE, window, live, [], config)
    assert first == second
    assert info_a == info_b


@PROPERTY
@given(scenarios())
def test_in_use_replicas_are_never_dropped(scenario):
    """A copy serving an in-flight query survives the whole plan."""
    state, inflight, _gb, _cap = _run_scenario(scenario)
    for a in inflight:
        assert state.replicas.has(a.dataset_id, a.node)
