"""Parity and protocol tests for the parallel screening engine.

Three layers, mirroring the contract in ``docs/performance.md``:

* the batch kernel (:func:`repro.serve.screenpool.screen_rows`) is
  element-for-element the gateway's original per-pair prefilter;
* the shared-memory views round-trip arrays consistently under the
  seqlock protocol;
* a gateway on the ``batch`` engine (inline or pooled) makes the same
  decisions — and writes the same checkpoints — as the ``legacy``
  reference.
"""

import asyncio
import contextlib
import dataclasses
import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.io.serialize import state_to_dict
from repro.serve import (
    AdmissionGateway,
    GatewayConfig,
    GatewayClient,
    QueryFactory,
    ScreenPool,
    ScreenStatics,
    SharedStateViews,
)
from repro.serve.gateway import _MAX_RESCREENS
from repro.serve.screenpool import (
    build_rows,
    screen_rows,
    snapshot_state,
    verdicts_from_pairs,
)
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_workload


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def screen_instance(small_topology):
    """A compact workload instance for screening tests."""
    return generate_workload(small_topology, spawn_rng(7, "screen"), PaperDefaults())


@contextlib.asynccontextmanager
async def running_gateway(instance, **config):
    gateway = AdmissionGateway(instance, GatewayConfig(**config))
    await gateway.start()
    try:
        yield gateway
    finally:
        if not gateway._closed.is_set():
            await gateway.stop()


def churn_state(gateway, queries, *, down=()):
    """Admit a workload slice (and fail nodes) so screens see real state."""
    state = gateway.state
    for query in queries:
        for d_id in query.demanded:
            dataset = gateway.instance.dataset(d_id)
            for node in gateway.instance.placement_nodes:
                if state.can_serve(query, dataset, node):
                    state.serve(query, dataset, node)
                    break
    for node in down:
        state.mark_down(node)


class TestKernelParity:
    """screen_rows == AdmissionGateway._prefilter, bit for bit."""

    def _assert_parity(self, gateway, queries):
        statics = ScreenStatics.from_instance(gateway.instance)
        batch = [SimpleNamespace(query=q) for q in queries]
        available = gateway.state.available_array()
        expected = gateway._prefilter(batch, available)
        rows = build_rows(queries, statics)
        view = snapshot_state(gateway.state, statics)
        np.testing.assert_array_equal(view.free_ghz, available)
        pair_ok = screen_rows(statics, view, rows)
        actual = verdicts_from_pairs(rows, pair_ok, len(batch))
        assert actual == expected

    def test_fresh_state(self, screen_instance):
        gateway = AdmissionGateway(screen_instance)
        self._assert_parity(gateway, list(screen_instance.queries[:32]))

    def test_after_churn(self, screen_instance):
        gateway = AdmissionGateway(screen_instance)
        churn_state(gateway, screen_instance.queries[:40])
        self._assert_parity(gateway, list(screen_instance.queries))

    def test_with_down_nodes(self, screen_instance):
        gateway = AdmissionGateway(screen_instance)
        churn_state(
            gateway,
            screen_instance.queries[:40],
            down=screen_instance.placement_nodes[:2],
        )
        self._assert_parity(gateway, list(screen_instance.queries))

    def test_exhausted_slots_gate(self, screen_instance):
        gateway = AdmissionGateway(screen_instance)
        # Burn every replica slot of the hottest datasets.
        state = gateway.state
        for d_id in list(screen_instance.datasets)[:5]:
            for node in screen_instance.placement_nodes:
                if state.replicas.remaining_slots(d_id) <= 0:
                    break
                if state.replicas.can_place(d_id, node):
                    state.replicas.place(d_id, node)
        self._assert_parity(gateway, list(screen_instance.queries))

    def test_tight_deadlines(self, screen_instance):
        gateway = AdmissionGateway(screen_instance)
        squeezed = [
            dataclasses.replace(q, deadline_s=q.deadline_s * f)
            for q, f in zip(
                screen_instance.queries, [1.0, 0.5, 0.1, 0.01, 1e-6] * 100
            )
        ]
        self._assert_parity(gateway, squeezed[: len(screen_instance.queries)])


class TestBuildRows:
    def test_flattens_pairs_in_order(self, screen_instance):
        statics = ScreenStatics.from_instance(screen_instance)
        queries = list(screen_instance.queries[:8])
        rows = build_rows(queries, statics)
        expected_pairs = [
            (i, d) for i, q in enumerate(queries) for d in q.demanded
        ]
        assert len(rows) == len(expected_pairs)
        for r, (i, d_id) in enumerate(expected_pairs):
            assert rows.query_row[r] == i
            assert statics.dataset_ids[rows.dataset_idx[r]] == d_id
            assert rows.home[r] == queries[i].home_node
            assert rows.alpha[r] == queries[i].alpha_for(d_id)

    def test_statics_match_scalar_accessors(self, screen_instance):
        statics = ScreenStatics.from_instance(screen_instance)
        inst = screen_instance
        for r, d_id in enumerate(statics.dataset_ids):
            assert statics.volumes_gb[r] == inst.dataset(d_id).volume_gb
        for home in {q.home_node for q in inst.queries}:
            np.testing.assert_array_equal(
                statics.home_delays[home], inst.paths.placement_delays_to(home)
            )


class TestSharedViews:
    def test_publish_read_round_trip(self):
        free = np.array([1.5, 2.0, 0.25])
        up = np.array([True, False, True])
        slots = np.array([0, 2], dtype=np.int64)
        presence = np.array([[True, False, True], [False, False, True]])
        with SharedStateViews.create(2, 3) as views:
            views.publish(7, free, up, slots, presence)
            snap = views.read_snapshot()
            assert snap.generation == 7
            np.testing.assert_array_equal(snap.free_ghz, free)
            np.testing.assert_array_equal(snap.up, up)
            np.testing.assert_array_equal(snap.slots_left, slots)
            np.testing.assert_array_equal(snap.presence, presence)
            assert snap.any_down

    def test_snapshot_is_a_copy(self):
        with SharedStateViews.create(1, 2) as views:
            views.publish(
                1,
                np.array([1.0, 2.0]),
                np.ones(2, dtype=bool),
                np.array([1], dtype=np.int64),
                np.ones((1, 2), dtype=bool),
            )
            snap = views.read_snapshot()
            views.publish(
                2,
                np.array([9.0, 9.0]),
                np.ones(2, dtype=bool),
                np.array([0], dtype=np.int64),
                np.zeros((1, 2), dtype=bool),
            )
            np.testing.assert_array_equal(snap.free_ghz, [1.0, 2.0])
            assert views.read_snapshot().generation == 2

    def test_attach_sees_writer(self):
        with SharedStateViews.create(1, 2) as writer:
            writer.publish(
                3,
                np.array([4.0, 5.0]),
                np.ones(2, dtype=bool),
                np.array([2], dtype=np.int64),
                np.zeros((1, 2), dtype=bool),
            )
            reader = SharedStateViews.attach(writer.name, 1, 2)
            try:
                snap = reader.read_snapshot()
                assert snap.generation == 3
                np.testing.assert_array_equal(snap.free_ghz, [4.0, 5.0])
            finally:
                reader.close()

    def test_in_flight_write_blocks_readers(self):
        with SharedStateViews.create(1, 1) as views:
            views._header[0] = 1  # simulate a writer mid-publish (odd seq)
            with pytest.raises(RuntimeError, match="consistent view"):
                views.read_snapshot(max_retries=4)

    def test_size_mismatch_rejected(self):
        with SharedStateViews.create(1, 1) as views:
            with pytest.raises(ValueError, match="smaller"):
                SharedStateViews(views._shm, 100, 100, owner=False)


class TestScreenPool:
    def test_pool_matches_inline_kernel(self, screen_instance):
        gateway = AdmissionGateway(screen_instance)
        churn_state(gateway, screen_instance.queries[:30])
        statics = ScreenStatics.from_instance(screen_instance)
        rows = build_rows(list(screen_instance.queries), statics)
        view = snapshot_state(gateway.state, statics)
        expected = screen_rows(statics, view, rows)
        with ScreenPool(statics, num_workers=2) as pool:
            generation = pool.publish(gateway.state)
            assert generation == gateway.state.generation
            pair_ok, oldest = pool.screen(rows, generation)
            assert oldest == generation
            np.testing.assert_array_equal(pair_ok, expected)

    def test_generation_tracks_mutation(self, screen_instance):
        statics = ScreenStatics.from_instance(screen_instance)
        gateway = AdmissionGateway(screen_instance)
        with ScreenPool(statics, num_workers=1) as pool:
            first = pool.publish(gateway.state)
            churn_state(gateway, screen_instance.queries[:3])
            second = pool.publish(gateway.state)
            assert second > first

    def test_bad_worker_count_rejected(self, screen_instance):
        statics = ScreenStatics.from_instance(screen_instance)
        with pytest.raises(ValidationError):
            ScreenPool(statics, num_workers=0)

    def test_screen_before_start_raises(self, screen_instance):
        statics = ScreenStatics.from_instance(screen_instance)
        pool = ScreenPool(statics, num_workers=1)
        rows = build_rows(list(screen_instance.queries[:2]), statics)
        with pytest.raises(RuntimeError, match="not started"):
            pool.screen(rows, 0)


class TestConfig:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValidationError, match="screen_engine"):
            GatewayConfig(screen_engine="turbo")

    def test_legacy_engine_refuses_pool(self):
        with pytest.raises(ValidationError, match="batch"):
            GatewayConfig(screen_engine="legacy", screen_workers=4)


async def drive(instance, n_queries, *, seed=13, fail_at=None, **config):
    """Run one gateway scenario; returns (responses, checkpoint dict)."""
    responses = []
    async with running_gateway(instance, hold_factor=50.0, **config) as gateway:
        host, port = gateway.address
        factory = QueryFactory(instance, seed=seed)
        async with await GatewayClient.connect(host, port) as client:
            for i in range(n_queries):
                if fail_at is not None and i == fail_at:
                    gateway.state.mark_down(instance.placement_nodes[0])
                response = await client.submit(factory.make())
                responses.append(response)
        checkpoint = state_to_dict(gateway.state)
    return responses, checkpoint


class TestGoldenParity:
    """batch engine == legacy engine, decisions and checkpoints alike."""

    def test_batch_engine_is_decision_identical(self, screen_instance):
        legacy = run(drive(screen_instance, 60, screen_engine="legacy"))
        batch = run(drive(screen_instance, 60, screen_engine="batch"))
        assert json.dumps(batch[0]) == json.dumps(legacy[0])
        assert json.dumps(batch[1]) == json.dumps(legacy[1])

    def test_parity_survives_faults(self, screen_instance):
        legacy = run(
            drive(screen_instance, 60, fail_at=25, screen_engine="legacy")
        )
        batch = run(
            drive(screen_instance, 60, fail_at=25, screen_engine="batch")
        )
        assert json.dumps(batch[0]) == json.dumps(legacy[0])
        assert json.dumps(batch[1]) == json.dumps(legacy[1])

    def test_pooled_engine_matches_decisions(self, screen_instance):
        inline = run(drive(screen_instance, 50, screen_workers=1))
        pooled = run(drive(screen_instance, 50, screen_workers=2))
        assert [r["result"] for r in pooled[0]] == [
            r["result"] for r in inline[0]
        ]
        assert json.dumps(pooled[1]) == json.dumps(inline[1])


class TestStaleRescreen:
    def test_persistent_staleness_falls_back_inline(self, screen_instance):
        async def scenario():
            async with running_gateway(
                screen_instance, screen_workers=2
            ) as gateway:
                statics = gateway._statics
                queries = list(screen_instance.queries[:8])
                rows = build_rows(queries, statics)

                def always_stale(rows, generation):
                    return np.ones(len(rows), dtype=bool), generation - 1

                gateway._pool.screen = always_stale
                batch = [SimpleNamespace(query=q) for q in queries]
                available = gateway.state.available_array()
                verdict = await gateway._screen(batch, available)
                # Inline fallback still produced the exact screen.
                assert verdict == gateway._prefilter(batch, available)
                assert gateway.screen_stale_rescreens == _MAX_RESCREENS

        run(scenario())

    def test_stale_counter_stays_out_of_checkpoints(self, screen_instance, tmp_path):
        async def scenario():
            path = tmp_path / "ckpt.json"
            async with running_gateway(
                screen_instance, checkpoint_path=str(path)
            ) as gateway:
                gateway.screen_stale_rescreens = 99
                gateway.checkpoint()
            payload = json.loads(path.read_text())
            assert "screen_stale_rescreens" not in payload["counters"]

        run(scenario())


class TestStatusScreenPayload:
    def test_status_reports_screen_and_histogram(self, screen_instance):
        async def scenario():
            async with running_gateway(screen_instance) as gateway:
                host, port = gateway.address
                factory = QueryFactory(screen_instance, seed=2)
                async with await GatewayClient.connect(host, port) as client:
                    for _ in range(20):
                        await client.submit(factory.make())
                    status = await client.status()
                screen = status["screen"]
                assert screen["engine"] == "batch"
                assert screen["workers"] == 1
                assert screen["screen_s"]["count"] > 0
                assert screen["commit_s"]["count"] > 0
                hist = status["admission_latency"]
                assert len(hist["counts"]) == len(hist["buckets_le_s"]) + 1
                # Fast-rejects never reach the batch loop, so the
                # histogram counts only batched decisions.
                batched = (
                    status["counters"]["admitted"]
                    + status["counters"]["rejected"]
                )
                assert sum(hist["counts"]) == batched > 0
                assert hist["p50_s"] is not None
                rendered = GatewayClient.render_status(status)
                assert "engine=batch" in rendered
                assert "admission latency" in rendered

        run(scenario())
