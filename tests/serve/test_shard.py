"""Sharded control plane: plan determinism, golden parity, routing.

The load-bearing property is *decision equivalence*: a router fronting
one full-coverage shard must answer byte-identically to a bare gateway
(responses AND checkpoint), and a region-partitioned trace served by two
shards must reproduce the single gateway's decision stream exactly.
"""

import asyncio
import dataclasses
import json
import time

import pytest

from repro.core.types import Query
from repro.io.serialize import state_to_dict
from repro.serve import (
    AdmissionGateway,
    FrontRouter,
    GatewayClient,
    GatewayConfig,
    QueryFactory,
    RouterConfig,
    ShardCluster,
    ShardPlan,
    run_closed_loop,
)
from repro.topology.testbed import digitalocean_testbed
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_workload


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def shard_instance(small_topology):
    return generate_workload(small_topology, spawn_rng(5, "serve"), PaperDefaults())


@pytest.fixture(scope="module")
def geo_instance():
    """Testbed topology whose nodes carry region labels."""
    return generate_workload(
        digitalocean_testbed(seed=3), spawn_rng(7, "geo"), PaperDefaults()
    )


class TestShardPlan:
    def test_single_shard(self, shard_instance):
        plan = ShardPlan.build(shard_instance, 1)
        assert plan.method == "single"
        assert plan.members == (shard_instance.placement_nodes,)

    def test_partition_covers_disjointly(self, shard_instance):
        plan = ShardPlan.build(shard_instance, 2)
        flat = [v for nodes in plan.members for v in nodes]
        assert sorted(flat) == sorted(shard_instance.placement_nodes)
        assert len(flat) == len(set(flat))
        assert all(nodes for nodes in plan.members)

    def test_deterministic(self, shard_instance):
        assert ShardPlan.build(shard_instance, 2) == ShardPlan.build(
            shard_instance, 2
        )

    def test_dc_anchored_when_no_regions(self, shard_instance):
        # The synthetic two-tier topology carries no region labels; with
        # 2 DCs a 2-way plan anchors each cloudlet on its closest DC.
        plan = ShardPlan.build(shard_instance, 2)
        assert plan.method == "dc-anchored"
        dcs = set(shard_instance.topology.data_centers)
        for nodes in plan.members:
            assert dcs.intersection(nodes)

    def test_round_robin_fallback(self, shard_instance):
        # More shards than DCs (the small topology has 2) and no regions.
        plan = ShardPlan.build(shard_instance, 3)
        assert plan.method == "round-robin"
        assert len(plan.members) == 3

    def test_region_alignment(self, geo_instance):
        plan = ShardPlan.build(geo_instance, 2)
        assert plan.method == "region"
        topology = geo_instance.topology
        # A region's nodes never straddle shards.
        for nodes in plan.members:
            by_region = {}
            for v in nodes:
                by_region.setdefault(topology.spec(v).region, []).append(v)
            for region, members in by_region.items():
                everywhere = [
                    v
                    for v in geo_instance.placement_nodes
                    if topology.spec(v).region == region
                ]
                assert sorted(members) == sorted(everywhere)

    def test_shard_of_node_matches_members(self, shard_instance):
        plan = ShardPlan.build(shard_instance, 2)
        shard_of = plan.shard_of_node()
        for sid, nodes in enumerate(plan.members):
            assert all(shard_of[v] == sid for v in nodes)

    def test_bad_counts_rejected(self, shard_instance):
        with pytest.raises(ValidationError, match=">= 1"):
            ShardPlan.build(shard_instance, 0)
        with pytest.raises(ValidationError, match="exceeds"):
            ShardPlan.build(
                shard_instance, len(shard_instance.placement_nodes) + 1
            )


class TestRouterValidation:
    def test_rejects_partial_coverage(self, shard_instance):
        plan = ShardPlan.build(shard_instance, 2)
        with pytest.raises(ValidationError, match="cover"):
            FrontRouter(
                shard_instance, [(("127.0.0.1", 1), plan.members[0])]
            )

    def test_rejects_overlap(self, shard_instance):
        nodes = shard_instance.placement_nodes
        with pytest.raises(ValidationError, match="more than one shard"):
            FrontRouter(
                shard_instance,
                [(("127.0.0.1", 1), nodes), (("127.0.0.1", 2), nodes[:1])],
            )

    def test_rejects_no_shards(self, shard_instance):
        with pytest.raises(ValidationError, match="at least one"):
            FrontRouter(shard_instance, [])


async def submit_stream(address, queries):
    """Sequential submits over one fresh client: ids and batch layout are
    then deterministic, so byte-level comparisons are meaningful."""
    lines = []
    async with await GatewayClient.connect(*address) as client:
        for query in queries:
            lines.append(json.dumps(await client.submit(query), sort_keys=True))
    return lines


class TestGoldenParityN1:
    def test_router_over_one_shard_is_byte_identical(
        self, shard_instance, tmp_path
    ):
        """Router + full-coverage shard == bare gateway: same response
        stream, same checkpoint bytes."""
        queries = [
            dataclasses.replace(q, query_id=1000 + i)
            for i, q in enumerate(shard_instance.queries * 3)
        ]

        async def drive_direct():
            gateway = AdmissionGateway(
                shard_instance,
                GatewayConfig(
                    hold_factor=50.0,
                    checkpoint_path=str(tmp_path / "direct.json"),
                ),
            )
            await gateway.start()
            lines = await submit_stream(gateway.address, queries)
            path = gateway.checkpoint()
            await gateway.stop()
            return lines, path.read_bytes()

        async def drive_routed():
            plan = ShardPlan.build(shard_instance, 1)
            gateway = AdmissionGateway(
                shard_instance,
                GatewayConfig(
                    hold_factor=50.0,
                    shard_nodes=plan.members[0],
                    shard_id=0,
                    checkpoint_path=str(tmp_path / "routed.json"),
                ),
            )
            await gateway.start()
            router = FrontRouter(
                shard_instance, [(gateway.address, plan.members[0])]
            )
            await router.start()
            lines = await submit_stream(router.address, queries)
            path = gateway.checkpoint()
            await router.stop()
            await gateway.stop()
            return lines, path.read_bytes(), router

        direct_lines, direct_bytes = run(drive_direct())
        routed_lines, routed_bytes, router = run(drive_routed())
        assert routed_lines == direct_lines
        assert routed_bytes == direct_bytes
        # Everything was shard-local: the two-phase path never engaged.
        assert router.counters["routed_cross"] == 0
        assert router.counters["submitted"] == len(queries)


def shard_local_queries(instance, plan, repeats=4):
    """Queries provably confined to their origin dataset's shard.

    Each query demands one dataset and gets a deadline strictly between
    its best in-shard latency and its best out-of-shard latency — the
    feasible node set is non-empty and entirely shard-local, so shard
    dynamics (slots, capacity, prices) evolve exactly as the single
    gateway's restriction.  Repeating each base query exercises the
    replica-slot and capacity paths, not just first placements.
    """
    shard_of = plan.shard_of_node()
    pos = {v: i for i, v in enumerate(instance.placement_nodes)}
    base = []
    qid = 2000
    for sid, nodes in enumerate(plan.members):
        in_idx = [pos[v] for v in nodes]
        out_idx = [pos[v] for v in instance.placement_nodes if shard_of[v] != sid]
        for d_id in sorted(instance.datasets):
            dataset = instance.dataset(d_id)
            if shard_of[dataset.origin_node] != sid:
                continue
            proto = Query(
                query_id=qid,
                home_node=nodes[0],
                demanded=(d_id,),
                selectivity=(0.5,),
                compute_rate=1.0,
                deadline_s=1.0,
            )
            vec = instance.pair_latency_vector(proto, dataset)
            lo = float(vec[in_idx].min())
            hi = float(vec[out_idx].min())
            if not lo < hi:
                continue
            base.append(dataclasses.replace(proto, deadline_s=(lo + hi) / 2.0))
            qid += 1
    assert base, "workload yielded no shard-confined queries"
    return [
        dataclasses.replace(q, query_id=3000 + i)
        for i, q in enumerate(base * repeats)
    ]


class TestDecisionParityN2:
    def test_partitioned_trace_matches_single_gateway(self, shard_instance):
        """Two shards serving a shard-confined trace reproduce the single
        gateway's decisions exactly (responses, replicas, free compute)."""
        plan = ShardPlan.build(shard_instance, 2)
        queries = shard_local_queries(shard_instance, plan)
        pos = {v: i for i, v in enumerate(shard_instance.placement_nodes)}

        async def drive_single():
            gateway = AdmissionGateway(
                shard_instance, GatewayConfig(hold_factor=50.0)
            )
            await gateway.start()
            lines = await submit_stream(gateway.address, queries)
            replicas = {
                d: sorted(gateway.state.replicas.nodes(d))
                for d in shard_instance.datasets
            }
            avail = gateway.state.available_array()
            await gateway.stop()
            return lines, replicas, avail

        async def drive_sharded():
            gateways = []
            for sid, nodes in enumerate(plan.members):
                gateway = AdmissionGateway(
                    shard_instance,
                    GatewayConfig(
                        shard_nodes=nodes, shard_id=sid, hold_factor=50.0
                    ),
                )
                await gateway.start()
                gateways.append(gateway)
            router = FrontRouter(
                shard_instance,
                [(g.address, m) for g, m in zip(gateways, plan.members)],
            )
            await router.start()
            lines = await submit_stream(router.address, queries)
            replicas: dict[int, list[int]] = {
                d: [] for d in shard_instance.datasets
            }
            avail: dict[int, float] = {}
            for gateway, nodes in zip(gateways, plan.members):
                arr = gateway.state.available_array()
                for d in shard_instance.datasets:
                    replicas[d] += sorted(gateway.state.replicas.nodes(d))
                for v in nodes:
                    avail[v] = float(arr[pos[v]])
            counters = dict(router.counters)
            await router.stop()
            for gateway in gateways:
                await gateway.stop()
            return lines, {d: sorted(vs) for d, vs in replicas.items()}, avail, counters

        s_lines, s_replicas, s_avail = run(drive_single())
        r_lines, r_replicas, r_avail, counters = run(drive_sharded())
        assert r_lines == s_lines
        assert r_replicas == s_replicas
        for v in shard_instance.placement_nodes:
            assert r_avail[v] == float(s_avail[pos[v]])
        # Shard-confined by construction: no two-phase rounds ran.
        assert counters["routed_cross"] == 0
        results = [json.loads(line)["result"] for line in s_lines]
        assert "admitted" in results


def cross_shard_query(instance, plan):
    """A two-dataset query the router classifies as cross-shard.

    A query's latency vector is ``volume · (proc + α · home_delay)``, so
    two datasets only pull toward *different* shards when their
    selectivities differ (the argmin trades processing delay against
    home proximity).  Search homes × selectivity pairs with the router's
    own classifier so the test can't drift from the real routing rule.
    """
    probe = FrontRouter(
        instance,
        [
            (("127.0.0.1", 1), plan.members[0]),
            (("127.0.0.1", 2), plan.members[1]),
        ],
    )
    datasets = sorted(instance.datasets)[:6]
    for d1 in datasets:
        for d2 in datasets:
            if d2 <= d1:
                continue
            for home in instance.placement_nodes:
                for alphas in ((0.01, 1.0), (1.0, 0.01), (0.1, 1.0)):
                    query = Query(
                        query_id=4000,
                        home_node=home,
                        demanded=(d1, d2),
                        selectivity=alphas,
                        compute_rate=1.0,
                        deadline_s=1e9,
                    )
                    if isinstance(probe._route(query), dict):
                        return query
    pytest.skip("no cross-shard query constructible on this instance")


class TestCrossShardOverTcp:
    def test_two_phase_admission_and_abort(self, paper_instance):
        plan = ShardPlan.build(paper_instance, 2)
        query = cross_shard_query(paper_instance, plan)

        async def scenario():
            gateways = []
            for sid, nodes in enumerate(plan.members):
                gateway = AdmissionGateway(
                    paper_instance,
                    GatewayConfig(
                        shard_nodes=nodes, shard_id=sid, hold_factor=50.0
                    ),
                )
                await gateway.start()
                gateways.append(gateway)
            router = FrontRouter(
                paper_instance,
                [(g.address, m) for g, m in zip(gateways, plan.members)],
                RouterConfig(rpc_timeout_s=10.0),
            )
            await router.start()
            try:
                async with await GatewayClient.connect(*router.address) as client:
                    response = await client.submit(query)
                    if response["result"] == "admitted":
                        assert router.counters["routed_cross"] == 1
                        assert router.counters["two_phase_commits"] == 1
                        # One dataset per shard, ordered as demanded.
                        got = [a["dataset_id"] for a in response["assignments"]]
                        assert got == list(query.demanded)
                        shard_of = plan.shard_of_node()
                        touched = {
                            shard_of[a["node"]] for a in response["assignments"]
                        }
                        assert touched == {0, 1}
                        for gateway in gateways:
                            assert gateway.reserve_counters["committed"] == 1
                            assert gateway.state.pending_reservations() == 0
                            gateway.state.check_invariants()
                    else:
                        # Capacity may genuinely reject; the round must
                        # still have aborted cleanly on every shard.
                        assert response["result"] == "rejected"
                        assert router.counters["two_phase_aborts"] == 1
                        for gateway in gateways:
                            assert gateway.state.pending_reservations() == 0
                            gateway.state.check_invariants()

                    # Hopeless deadline: forwarded (not router-rejected),
                    # so the shard's fast-reject answers canonically.
                    hopeless = dataclasses.replace(
                        query, query_id=4001, deadline_s=1e-9
                    )
                    rejected = await client.submit(hopeless)
                    assert rejected["result"] == "rejected"
                    assert rejected["reason"] == "deadline-infeasible"
                    assert (
                        sum(g.counters["fast_rejected"] for g in gateways) == 1
                    )
            finally:
                await router.stop()
                for gateway in gateways:
                    await gateway.stop()

        run(scenario())

    def test_dead_shard_aborts_cleanly(self, paper_instance):
        """Killing one shard mid-ensemble: cross-shard submits degrade to
        shed/reject, the surviving shard never leaks a reservation."""
        plan = ShardPlan.build(paper_instance, 2)
        query = cross_shard_query(paper_instance, plan)

        async def scenario():
            gateways = []
            for sid, nodes in enumerate(plan.members):
                gateway = AdmissionGateway(
                    paper_instance,
                    GatewayConfig(
                        shard_nodes=nodes, shard_id=sid, hold_factor=50.0
                    ),
                )
                await gateway.start()
                gateways.append(gateway)
            router = FrontRouter(
                paper_instance,
                [(g.address, m) for g, m in zip(gateways, plan.members)],
                RouterConfig(rpc_timeout_s=2.0),
            )
            await router.start()
            try:
                await gateways[1].stop()  # shard 1 dies
                async with await GatewayClient.connect(*router.address) as client:
                    response = await client.submit(query)
                assert response["result"] in ("rejected", "shed")
                assert router.counters["two_phase_aborts"] == 1
                survivor = gateways[0]
                assert survivor.state.pending_reservations() == 0
                survivor.state.check_invariants()
            finally:
                await router.stop()
                await gateways[0].stop()

        run(scenario())


class TestStatusAggregation:
    def test_router_status_sums_shards(self, shard_instance):
        plan = ShardPlan.build(shard_instance, 2)

        async def scenario():
            gateways = []
            for sid, nodes in enumerate(plan.members):
                gateway = AdmissionGateway(
                    shard_instance,
                    GatewayConfig(
                        shard_nodes=nodes, shard_id=sid, hold_factor=50.0
                    ),
                )
                await gateway.start()
                gateways.append(gateway)
            router = FrontRouter(
                shard_instance,
                [(g.address, m) for g, m in zip(gateways, plan.members)],
            )
            await router.start()
            try:
                async with await GatewayClient.connect(*router.address) as client:
                    for query in shard_instance.queries[:10]:
                        await client.submit(query)
                    status = await client.status()
            finally:
                await router.stop()
                for gateway in gateways:
                    await gateway.stop()
            return status

        status = run(scenario())
        assert status["router"]["num_shards"] == 2
        assert status["router"]["submitted"] == 10
        assert len(status["shards"]) == 2
        shard_submitted = sum(
            s["counters"]["submitted"] for s in status["shards"]
        )
        assert status["counters"]["submitted"] == shard_submitted
        for sid, shard_status in enumerate(status["shards"]):
            assert shard_status["shard"]["id"] == sid
            assert shard_status["shard"]["nodes"] == list(plan.members[sid])
        # The aggregated payload renders without error.
        text = GatewayClient.render_status(status)
        assert "counters:" in text


class TestShutdownStopRace:
    """A wire shutdown and ``ShardCluster.stop()`` racing must both finish.

    The shutdown fan-out stops every shard from inside its own loop;
    ``stop()`` then schedules a second teardown from the caller's
    thread.  That coroutine can land on a loop that closes before it
    ever runs, so the thread wrappers must treat the closed event and
    thread liveness as ground truth instead of blocking on the
    concurrent future (which would otherwise stay pending forever).
    """

    def test_shutdown_then_stop_completes_quickly(self, shard_instance):
        plan = ShardPlan.build(shard_instance, 2)
        for _ in range(5):
            cluster = ShardCluster(
                shard_instance,
                plan,
                GatewayConfig(hold_factor=50.0),
                RouterConfig(),
            )
            address = cluster.start()

            async def drive():
                await run_closed_loop(
                    *address,
                    QueryFactory(shard_instance, seed=0),
                    num_requests=40,
                    concurrency=4,
                )
                async with await GatewayClient.connect(*address) as client:
                    await client.shutdown()

            asyncio.run(drive())
            started = time.monotonic()
            cluster.wait(10.0)
            cluster.stop()  # races the fan-out teardown; must not block
            assert time.monotonic() - started < 10.0
            assert cluster.router is not None
            assert cluster.router._closed.is_set()
            for gateway in cluster.gateways:
                assert gateway._closed.is_set()


class TestRenderStatusRobustness:
    """Satellite: ``repro load --status`` must survive sparse payloads."""

    def test_empty_payload(self):
        text = GatewayClient.render_status({})
        assert "uptime" in text and "counters:" in text

    def test_empty_histogram_and_missing_reopt(self):
        payload = {
            "uptime_s": 1.0,
            "counters": {"submitted": 0},
            "screen": {"engine": "batch", "workers": 1},
            "admission_latency": {"buckets_le_s": [], "counts": []},
        }
        text = GatewayClient.render_status(payload)
        assert "admission latency" not in text
        assert "reopt" not in text

    def test_histogram_without_counts_key(self):
        payload = {"admission_latency": {"p50_s": None}}
        assert "admission latency" not in GatewayClient.render_status(payload)

    def test_malformed_sections_are_tolerated(self):
        payload = {
            "uptime_s": "soon",
            "counters": {"submitted": "many"},
            "screen": {"screen_s": {"count": 3}},
            "two_phase": {"pending": 2, "reserved": 1},
            "shard": {"id": 1, "scoped": True},
            "reopt": {"cycles": None, "migrated_gb": "n/a"},
        }
        text = GatewayClient.render_status(payload)
        assert "submitted=-" in text
        assert "shard: id=1" in text
        assert "two-phase:" in text
        assert "reopt: cycles=-" in text

    def test_real_shard_status_renders(self, shard_instance):
        plan = ShardPlan.build(shard_instance, 2)

        async def scenario():
            gateway = AdmissionGateway(
                shard_instance,
                GatewayConfig(
                    shard_nodes=plan.members[0], shard_id=0, hold_factor=50.0
                ),
            )
            await gateway.start()
            try:
                return gateway.status()
            finally:
                await gateway.stop()

        text = GatewayClient.render_status(run(scenario()))
        assert f"shard: id=0 scoped=True nodes={len(plan.members[0])}" in text
