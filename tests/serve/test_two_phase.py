"""Two-phase reserve/commit/abort: unit semantics + crash schedules.

The cross-shard admission saga holds resources *for real* at reserve
time, so the properties that matter are equalities of state: an aborted
(or expired) reservation must restore the shard exactly, a committed one
must hold exactly what it reserved, and no schedule of reserves,
commits, aborts, expiries, and injected node crashes may ever leave a
shard violating :meth:`ClusterState.check_invariants`.
"""

import asyncio
import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import AdmissionGateway, GatewayConfig, ShardPlan
from repro.serve.protocol import ProtocolError
from repro.util.rng import spawn_rng
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_workload


@pytest.fixture(scope="module")
def shard_instance(small_topology):
    return generate_workload(small_topology, spawn_rng(5, "serve"), PaperDefaults())


def make_shard_gateways(instance, num_shards=2):
    """Shard gateways driven directly (no TCP, no admission worker)."""
    plan = ShardPlan.build(instance, num_shards)
    return plan, [
        AdmissionGateway(
            instance,
            GatewayConfig(shard_nodes=nodes, shard_id=sid, hold_factor=50.0),
        )
        for sid, nodes in enumerate(plan.members)
    ]


def reservable_query(gateway, instance):
    """First workload query the shard can actually reserve in full."""
    for query in instance.queries:
        available = gateway.state.available_array()
        if all(
            gateway._probe_mask(query, d_id, available).any()
            for d_id in query.demanded
        ):
            return query
    pytest.skip("no shard-reservable query in this workload")


def state_fingerprint(state):
    """Everything an abort must restore, in comparable form."""
    return (
        state.available_array().tobytes(),
        {
            d_id: frozenset(state.replicas.nodes(d_id))
            for d_id in state.instance.datasets
        },
        {v: dict(n.snapshot()) for v, n in state.nodes.items()},
    )


class TestReserveCommit:
    def test_reserve_commit_holds_resources(self, shard_instance):
        async def scenario():
            _, (gw, _) = make_shard_gateways(shard_instance)
            query = reservable_query(gw, shard_instance)
            before = gw.state.total_allocated()
            response = gw._reserve_query("r1", query, tuple(query.demanded))
            assert response["result"] == "reserved"
            assert len(response["assignments"]) == len(query.demanded)
            assert gw.state.pending_reservations() == 1
            assert gw.state.total_allocated() > before

            held = gw.state.total_allocated()
            committed = gw._commit_reservation("r1")
            assert committed["committed"] is True
            assert committed["response_s"] == pytest.approx(
                max(a["latency_s"] for a in response["assignments"])
            )
            # Commit changes bookkeeping only: the resources stay held.
            assert gw.state.total_allocated() == held
            assert gw.state.pending_reservations() == 0
            assert query.query_id in gw._inflight
            gw.state.check_invariants(gw._inflight[query.query_id])
            assert gw.reserve_counters["reserved"] == 1
            assert gw.reserve_counters["committed"] == 1

        asyncio.run(scenario())

    def test_commit_unknown_reservation_errors(self, shard_instance):
        _, (gw, _) = make_shard_gateways(shard_instance)
        with pytest.raises(ProtocolError, match="no pending reservation"):
            gw._commit_reservation("ghost")

    def test_duplicate_reservation_id_rejected(self, shard_instance):
        _, (gw, _) = make_shard_gateways(shard_instance)
        query = reservable_query(gw, shard_instance)
        assert gw._reserve_query("dup", query, tuple(query.demanded))[
            "result"
        ] == "reserved"
        with pytest.raises(ProtocolError, match="already pending"):
            gw._reserve_query("dup", query, tuple(query.demanded))

    def test_infeasible_reserve_leaves_state_untouched(self, shard_instance):
        _, (gw, _) = make_shard_gateways(shard_instance)
        query = dataclasses.replace(
            reservable_query(gw, shard_instance), deadline_s=1e-9
        )
        before = state_fingerprint(gw.state)
        response = gw._reserve_query("r1", query, tuple(query.demanded))
        assert response["result"] == "rejected"
        assert state_fingerprint(gw.state) == before
        assert gw.state.pending_reservations() == 0
        assert gw.reserve_counters["rejected"] == 1


class TestAbort:
    def test_abort_restores_state_exactly(self, shard_instance):
        """Regression: an aborted reserve leaks neither compute capacity
        nor replica slots — the shard is byte-identical to before."""
        _, (gw, _) = make_shard_gateways(shard_instance)
        query = reservable_query(gw, shard_instance)
        before = state_fingerprint(gw.state)
        slots_before = {
            d_id: gw.state.replicas.remaining_slots(d_id)
            for d_id in query.demanded
        }
        assert gw._reserve_query("r1", query, tuple(query.demanded))[
            "result"
        ] == "reserved"
        assert gw._abort_reservation("r1") == {"found": True}
        assert state_fingerprint(gw.state) == before
        assert {
            d_id: gw.state.replicas.remaining_slots(d_id)
            for d_id in query.demanded
        } == slots_before
        assert gw.state.pending_reservations() == 0
        gw.state.check_invariants()

    def test_abort_is_idempotent(self, shard_instance):
        _, (gw, _) = make_shard_gateways(shard_instance)
        assert gw._abort_reservation("never-reserved") == {"found": False}
        query = reservable_query(gw, shard_instance)
        gw._reserve_query("r1", query, tuple(query.demanded))
        assert gw._abort_reservation("r1") == {"found": True}
        assert gw._abort_reservation("r1") == {"found": False}
        assert gw.reserve_counters["aborted"] == 1

    def test_expiry_acts_as_abort(self, shard_instance):
        _, (gw, _) = make_shard_gateways(shard_instance)
        query = reservable_query(gw, shard_instance)
        before = state_fingerprint(gw.state)
        gw._reserve_query("r1", query, tuple(query.demanded))
        gw._expire_reservation("r1")
        assert state_fingerprint(gw.state) == before
        assert gw.reserve_counters["expired"] == 1
        # A late router abort after the TTL fired is a safe no-op.
        assert gw._abort_reservation("r1") == {"found": False}
        gw.state.check_invariants()

    def test_abort_after_crash_never_leaks(self, shard_instance):
        """A shard crash between reserve and abort must not corrupt the
        undo: evicted allocations and dropped replicas are tolerated."""
        _, (gw, _) = make_shard_gateways(shard_instance)
        query = reservable_query(gw, shard_instance)
        response = gw._reserve_query("r1", query, tuple(query.demanded))
        assert response["result"] == "reserved"
        victim = response["assignments"][0]["node"]
        gw.state.mark_down(victim)
        gw.state.evict_allocations(victim)
        gw.state.drop_replicas(victim)
        gw.state.check_invariants()
        assert gw._abort_reservation("r1") == {"found": True}
        gw.state.check_invariants()
        assert gw.state.pending_reservations() == 0


# -- Hypothesis: arbitrary schedules with injected crashes -----------------

ACTIONS = ("reserve", "commit", "abort", "expire", "crash", "recover")


@settings(max_examples=25, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),  # shard
            st.sampled_from(ACTIONS),
            st.integers(min_value=0, max_value=63),  # query / node selector
        ),
        max_size=14,
    )
)
def test_schedules_preserve_invariants(shard_instance, steps):
    """No interleaving of two-phase ops and crashes breaks a shard."""

    async def scenario():
        plan, gateways = make_shard_gateways(shard_instance)
        pending: list[list[str]] = [[], []]
        next_rid = 0
        next_qid = 10_000
        queries = shard_instance.queries

        for shard, action, selector in steps:
            gw = gateways[shard]
            state = gw.state
            if action == "reserve":
                nonlocal_rid = f"r{next_rid}"
                next_rid += 1
                query = dataclasses.replace(
                    queries[selector % len(queries)], query_id=next_qid
                )
                next_qid += 1
                response = gw._reserve_query(
                    nonlocal_rid, query, tuple(query.demanded)
                )
                if response["result"] == "reserved":
                    pending[shard].append(nonlocal_rid)
            elif action == "commit" and pending[shard]:
                rid = pending[shard].pop(selector % len(pending[shard]))
                gw._commit_reservation(rid)
            elif action == "abort" and pending[shard]:
                rid = pending[shard].pop(selector % len(pending[shard]))
                assert gw._abort_reservation(rid) == {"found": True}
            elif action == "expire" and pending[shard]:
                rid = pending[shard].pop(selector % len(pending[shard]))
                gw._expire_reservation(rid)
                assert not state.has_reservation(rid)
            elif action == "crash":
                up = [v for v in state.nodes if state.is_up(v)]
                if len(up) > 1:  # keep at least one node serving
                    victim = up[selector % len(up)]
                    state.mark_down(victim)
                    state.evict_allocations(victim)
                    state.drop_replicas(victim)
            elif action == "recover":
                down = sorted(state.down_nodes())
                if down:
                    state.mark_up(down[selector % len(down)])
            for g in gateways:
                g.state.check_invariants()

        # Drain: abort whatever is still pending; shards must come back
        # clean (no leaked allocations from reservations).
        for shard, gw in enumerate(gateways):
            for rid in pending[shard]:
                gw._abort_reservation(rid)
            gw.state.check_invariants()
            assert gw.state.pending_reservations() == 0

    asyncio.run(scenario())
