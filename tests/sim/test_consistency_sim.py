"""Tests for the event-driven consistency simulation."""

import pytest

from repro.cluster.consistency import ConsistencyModel
from repro.core import make_algorithm
from repro.sim.consistency_sim import ConsistencySimConfig, simulate_consistency


@pytest.fixture(scope="module")
def placed(paper_instance):
    solution = make_algorithm("appro-g").solve(paper_instance)
    return paper_instance, solution.replicas


class TestAgreementWithAnalyticModel:
    @pytest.mark.parametrize("threshold", [0.05, 0.1, 0.25])
    def test_sync_count_matches(self, placed, threshold):
        instance, replicas = placed
        model = ConsistencyModel(threshold=threshold)
        sim = simulate_consistency(
            instance, replicas, ConsistencySimConfig(model=model)
        )
        analytic = model.report(instance, replicas)
        assert sim.syncs == analytic.syncs

    @pytest.mark.parametrize("threshold", [0.05, 0.1, 0.25])
    def test_shipped_volume_matches(self, placed, threshold):
        instance, replicas = placed
        model = ConsistencyModel(threshold=threshold)
        sim = simulate_consistency(
            instance, replicas, ConsistencySimConfig(model=model)
        )
        analytic = model.report(instance, replicas)
        assert sim.shipped_gb == pytest.approx(analytic.shipped_gb)


class TestStaleness:
    def test_staleness_scales_with_threshold(self, placed):
        """The sawtooth average is ~threshold·|S|/2: doubling the threshold
        doubles mean staleness.  Thresholds are chosen to divide the
        horizon's total growth exactly (30 days × 5%/day = 1.5), so no
        undelivered tail skews the ratio."""
        instance, replicas = placed
        s1 = simulate_consistency(
            instance,
            replicas,
            ConsistencySimConfig(model=ConsistencyModel(threshold=0.075)),
        ).mean_staleness_gb
        s2 = simulate_consistency(
            instance,
            replicas,
            ConsistencySimConfig(model=ConsistencyModel(threshold=0.15)),
        ).mean_staleness_gb
        assert s2 == pytest.approx(2.0 * s1, rel=0.05)

    def test_no_growth_no_staleness(self, placed):
        instance, replicas = placed
        report = simulate_consistency(
            instance,
            replicas,
            ConsistencySimConfig(
                model=ConsistencyModel(growth_rate_per_day=0.0)
            ),
        )
        assert report.syncs == 0
        assert report.mean_staleness_gb == 0.0

    def test_origin_only_placement_trivial(self, paper_instance):
        replicas = {
            d: (ds.origin_node,) for d, ds in paper_instance.datasets.items()
        }
        report = simulate_consistency(paper_instance, replicas)
        assert report.syncs == 0
        assert report.shipped_gb == 0.0


class TestContention:
    def test_contention_reports_link_busy(self, placed):
        instance, replicas = placed
        loaded = simulate_consistency(
            instance, replicas, ConsistencySimConfig(contention=True)
        )
        free = simulate_consistency(
            instance, replicas, ConsistencySimConfig(contention=False)
        )
        assert loaded.max_link_busy_s > 0.0
        assert free.max_link_busy_s == 0.0
        # Same data ships either way.
        assert loaded.shipped_gb == pytest.approx(free.shipped_gb)

    def test_deterministic(self, placed):
        instance, replicas = placed
        r1 = simulate_consistency(instance, replicas)
        r2 = simulate_consistency(instance, replicas)
        assert r1 == r2
