"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 4.0]

    def test_schedule_in_relative(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_in(0.5, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [1.5]

    def test_past_schedule_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_in(-0.1, lambda: None)

    def test_cascading_events(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10:
                sim.schedule_in(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert count[0] == 10
        assert sim.now == 9.0
        assert sim.events_processed == 10


class TestRunUntil:
    def test_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule_in(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="events"):
            sim.run(max_events=100)

    def test_max_events_budget_is_per_run(self):
        """Regression: the budget used to be checked against the cumulative
        ``events_processed``, so a second ``run()`` inherited the first
        run's count and raised "runaway schedule" spuriously."""
        sim = Simulator()
        for i in range(8):
            sim.schedule(float(i), lambda: None)
        sim.run(until=4.0, max_events=5)  # fires 5 events, budget exactly met
        sim.run(max_events=5)  # fires the remaining 3; used to raise at 6
        assert sim.events_processed == 8

    def test_events_processed_still_cumulative(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2
