"""Tests for placement execution in the event simulator."""

import math

import pytest

from repro.core import make_algorithm
from repro.sim.execution import ExecutionConfig, execute_placement


@pytest.fixture(scope="module")
def solved(paper_instance):
    return make_algorithm("appro-g").solve(paper_instance)


class TestContentionFree:
    def test_measured_equals_analytic(self, paper_instance, solved):
        report = execute_placement(paper_instance, solved)
        for outcome in report.outcomes:
            analytic = max(
                a.latency_s for a in solved.served_pairs(outcome.query_id)
            )
            assert math.isclose(outcome.response_s, analytic, rel_tol=1e-9)

    def test_no_deadline_violations(self, paper_instance, solved):
        report = execute_placement(paper_instance, solved)
        assert report.deadline_violations == 0

    def test_one_outcome_per_admitted_query(self, paper_instance, solved):
        report = execute_placement(paper_instance, solved)
        assert {o.query_id for o in report.outcomes} == set(solved.admitted)

    def test_pair_traces_cover_demands(self, paper_instance, solved):
        report = execute_placement(paper_instance, solved)
        for outcome in report.outcomes:
            q = paper_instance.query(outcome.query_id)
            assert {t.dataset_id for t in outcome.pairs} == set(q.demanded)

    def test_trace_timeline_ordered(self, paper_instance, solved):
        report = execute_placement(paper_instance, solved)
        for outcome in report.outcomes:
            for t in outcome.pairs:
                assert t.started_s <= t.processed_s <= t.delivered_s

    def test_deterministic(self, paper_instance, solved):
        r1 = execute_placement(paper_instance, solved)
        r2 = execute_placement(paper_instance, solved)
        assert [o.response_s for o in r1.outcomes] == [
            o.response_s for o in r2.outcomes
        ]


class TestContention:
    def test_contention_never_faster(self, paper_instance, solved):
        free = execute_placement(paper_instance, solved)
        loaded = execute_placement(
            paper_instance, solved, ExecutionConfig(contention=True)
        )
        free_by_q = {o.query_id: o.response_s for o in free.outcomes}
        for o in loaded.outcomes:
            assert o.response_s >= free_by_q[o.query_id] - 1e-9

    def test_makespan_at_least_max_response(self, paper_instance, solved):
        report = execute_placement(
            paper_instance, solved, ExecutionConfig(contention=True)
        )
        assert report.makespan_s >= report.max_response_s - 1e-9


class TestArrivals:
    def test_poisson_spreads_arrivals(self, paper_instance, solved):
        report = execute_placement(
            paper_instance,
            solved,
            ExecutionConfig(arrival="poisson", mean_interarrival_s=0.1, seed=1),
        )
        arrivals = sorted(o.arrival_s for o in report.outcomes)
        assert arrivals[0] > 0.0
        assert arrivals[-1] > arrivals[0]

    def test_poisson_deterministic_given_seed(self, paper_instance, solved):
        cfg = ExecutionConfig(arrival="poisson", seed=3)
        r1 = execute_placement(paper_instance, solved, cfg)
        r2 = execute_placement(paper_instance, solved, cfg)
        assert [o.arrival_s for o in r1.outcomes] == [
            o.arrival_s for o in r2.outcomes
        ]

    def test_unknown_arrival_mode_rejected(self):
        with pytest.raises(ValueError):
            ExecutionConfig(arrival="burst")


class TestReportProperties:
    def test_empty_solution_empty_report(self, paper_instance):
        from repro.core.types import PlacementSolution

        empty = PlacementSolution(
            algorithm="none",
            replicas={},
            assignments={},
            admitted=frozenset(),
            rejected=frozenset(range(paper_instance.num_queries)),
        )
        report = execute_placement(paper_instance, empty)
        assert report.num_executed == 0
        assert report.mean_response_s == 0.0
        assert report.max_response_s == 0.0
