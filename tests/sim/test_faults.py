"""Tests for the fault-injection subsystem (schedule, injector, state)."""

import pytest

from repro.cluster.state import ClusterState
from repro.sim.engine import Simulator
from repro.sim.faults import (
    FaultConfig,
    FaultEvent,
    FaultInjector,
    build_fault_schedule,
    _integrate_curve,
)


class TestFaultConfig:
    def test_defaults_valid(self):
        FaultConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mean_time_to_failure_s": 0.0},
            {"mean_downtime_s": -1.0},
            {"max_failures": -1},
            {"min_up_nodes": 0},
            {"failover_retries": -1},
            {"failover_backoff_s": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)


class TestSchedule:
    NODES = (10, 20, 30, 40)

    def test_deterministic(self):
        cfg = FaultConfig(mean_time_to_failure_s=1.0, seed=5)
        s1 = build_fault_schedule(self.NODES, 50.0, cfg)
        s2 = build_fault_schedule(self.NODES, 50.0, cfg)
        assert s1 == s2
        assert s1  # a 50 s horizon at MTTF 1 s produces events

    def test_different_seeds_differ(self):
        a = build_fault_schedule(
            self.NODES, 50.0, FaultConfig(mean_time_to_failure_s=1.0, seed=1)
        )
        b = build_fault_schedule(
            self.NODES, 50.0, FaultConfig(mean_time_to_failure_s=1.0, seed=2)
        )
        assert a != b

    def test_crash_recover_pairing(self):
        cfg = FaultConfig(mean_time_to_failure_s=0.5, mean_downtime_s=0.3, seed=3)
        schedule = build_fault_schedule(self.NODES, 30.0, cfg)
        crashes = [e for e in schedule if e.kind == "crash"]
        recoveries = [e for e in schedule if e.kind == "recover"]
        assert len(crashes) == len(recoveries)
        # Per node, transitions alternate crash/recover in time order.
        for node in self.NODES:
            kinds = [e.kind for e in schedule if e.node == node]
            assert all(
                k == ("crash" if i % 2 == 0 else "recover")
                for i, k in enumerate(kinds)
            )

    def test_crashes_inside_horizon(self):
        cfg = FaultConfig(mean_time_to_failure_s=0.5, seed=3)
        schedule = build_fault_schedule(self.NODES, 10.0, cfg)
        assert all(e.time < 10.0 for e in schedule if e.kind == "crash")

    def test_sorted_by_time(self):
        cfg = FaultConfig(mean_time_to_failure_s=0.5, seed=3)
        schedule = build_fault_schedule(self.NODES, 30.0, cfg)
        times = [e.time for e in schedule]
        assert times == sorted(times)

    def test_max_failures_cap(self):
        cfg = FaultConfig(mean_time_to_failure_s=0.1, seed=3, max_failures=2)
        schedule = build_fault_schedule(self.NODES, 100.0, cfg)
        assert sum(1 for e in schedule if e.kind == "crash") == 2

    def test_min_up_nodes_respected(self):
        cfg = FaultConfig(
            mean_time_to_failure_s=0.05,
            mean_downtime_s=50.0,
            seed=3,
            min_up_nodes=3,
        )
        schedule = build_fault_schedule(self.NODES, 20.0, cfg)
        down = set()
        for event in schedule:
            if event.kind == "crash":
                down.add(event.node)
                assert len(self.NODES) - len(down) >= 3
            else:
                down.discard(event.node)

    def test_zero_failures_allowed(self):
        cfg = FaultConfig(max_failures=0)
        assert build_fault_schedule(self.NODES, 100.0, cfg) == ()


class TestInjector:
    def _injector(self, tiny_instance, schedule, lost):
        state = ClusterState(tiny_instance)
        sim = Simulator()
        injector = FaultInjector(
            sim, state, schedule, lambda node, tags: lost.append((node, tags))
        )
        injector.arm()
        return sim, state, injector

    def test_crash_marks_down_and_evicts(self, tiny_instance):
        node = tiny_instance.placement_nodes[4]
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        lost = []
        schedule = (FaultEvent(1.0, "crash", node), FaultEvent(2.0, "recover", node))
        sim, state, injector = self._injector(tiny_instance, schedule, lost)
        state.serve(query, dataset, node)  # replica + allocation on the victim
        sim.run(until=1.5)
        assert not state.is_up(node)
        assert state.nodes[node].allocated_ghz == 0.0
        assert not state.replicas.has(0, node)  # non-origin replica destroyed
        assert lost == [(node, ((0, 0),))]
        sim.run()
        assert state.is_up(node)

    def test_origin_copy_survives_crash(self, tiny_instance):
        dataset = tiny_instance.dataset(0)
        node = dataset.origin_node
        schedule = (FaultEvent(1.0, "crash", node),)
        sim, state, injector = self._injector(tiny_instance, schedule, [])
        sim.run()
        assert state.replicas.has(0, node)  # ledger entry survives
        assert not state.is_up(node)

    def test_availability_curve_and_report(self, tiny_instance):
        node = tiny_instance.placement_nodes[0]
        n = len(tiny_instance.placement_nodes)
        schedule = (FaultEvent(1.0, "crash", node), FaultEvent(3.0, "recover", node))
        sim, state, injector = self._injector(tiny_instance, schedule, [])
        sim.run()
        report = injector.report(4.0)
        assert report.crashes == 1 and report.recoveries == 1
        assert report.availability_curve == (
            (0.0, 1.0),
            (1.0, 1.0 - 1.0 / n),
            (3.0, 1.0),
        )
        expected = (1.0 + 2.0 * (1.0 - 1.0 / n) + 1.0) / 4.0
        assert report.time_weighted_availability == pytest.approx(expected)

    def test_report_with_no_faults(self, tiny_instance):
        sim, state, injector = self._injector(tiny_instance, (), [])
        sim.run()
        report = injector.report(0.0)
        assert report.crashes == 0
        assert report.time_weighted_availability == 1.0
        assert report.mttr_s == 0.0
        assert report.degraded_throughput == 1.0


class TestCurveIntegration:
    def test_zero_duration(self):
        assert _integrate_curve([(0.0, 1.0)], 0.0) == 1.0

    def test_step_function(self):
        curve = [(0.0, 1.0), (2.0, 0.5), (6.0, 1.0)]
        assert _integrate_curve(curve, 10.0) == pytest.approx(
            (2.0 + 4.0 * 0.5 + 4.0) / 10.0
        )

    def test_end_before_last_point(self):
        curve = [(0.0, 1.0), (2.0, 0.5), (6.0, 1.0)]
        assert _integrate_curve(curve, 4.0) == pytest.approx((2.0 + 2.0 * 0.5) / 4.0)
