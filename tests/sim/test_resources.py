"""Tests for simulation resources (FIFO links, compute pools)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import ComputePool, FifoResource


class TestFifoResource:
    def test_serialises_holds(self):
        sim = Simulator()
        link = FifoResource(sim, "l")
        starts = []
        sim.schedule(0.0, lambda: link.acquire(2.0, lambda: starts.append(sim.now)))
        sim.schedule(0.0, lambda: link.acquire(1.0, lambda: starts.append(sim.now)))
        sim.run()
        assert starts == [0.0, 2.0]
        assert link.total_busy_s == pytest.approx(3.0)

    def test_idle_resource_starts_immediately(self):
        sim = Simulator()
        link = FifoResource(sim)
        starts = []
        sim.schedule(1.0, lambda: link.acquire(0.5, lambda: starts.append(sim.now)))
        sim.run()
        assert starts == [1.0]

    def test_queue_length(self):
        sim = Simulator()
        link = FifoResource(sim)
        lengths = []
        sim.schedule(0.0, lambda: link.acquire(5.0, lambda: None))
        sim.schedule(0.0, lambda: link.acquire(5.0, lambda: None))
        sim.schedule(0.0, lambda: lengths.append(link.queue_length))
        sim.run(until=1.0)
        assert lengths == [1]

    def test_zero_duration_hold(self):
        sim = Simulator()
        link = FifoResource(sim)
        fired = []
        sim.schedule(0.0, lambda: link.acquire(0.0, lambda: fired.append(True)))
        sim.run()
        assert fired == [True]
        assert not link.busy

    def test_busy_time_accrues_on_release(self):
        """Regression: the full hold duration used to be added when the
        hold *started*, over-reporting busy time for holds still in
        progress when a bounded run stops."""
        sim = Simulator()
        link = FifoResource(sim)
        sim.schedule(0.0, lambda: link.acquire(4.0, lambda: None))
        sim.run(until=1.0)  # mid-hold: nothing has completed yet
        assert link.busy
        assert link.total_busy_s == 0.0
        sim.run()
        assert link.total_busy_s == pytest.approx(4.0)

    def test_busy_time_counts_completed_holds_only(self):
        sim = Simulator()
        link = FifoResource(sim)
        sim.schedule(0.0, lambda: link.acquire(2.0, lambda: None))
        sim.schedule(0.0, lambda: link.acquire(3.0, lambda: None))
        sim.run(until=2.5)  # first hold done, second still running
        assert link.total_busy_s == pytest.approx(2.0)
        sim.run()
        assert link.total_busy_s == pytest.approx(5.0)


class TestComputePool:
    def test_concurrent_within_capacity(self):
        sim = Simulator()
        pool = ComputePool(sim, 10.0)
        starts = []
        sim.schedule(0.0, lambda: pool.acquire(4.0, 2.0, lambda: starts.append(sim.now)))
        sim.schedule(0.0, lambda: pool.acquire(5.0, 2.0, lambda: starts.append(sim.now)))
        sim.run()
        assert starts == [0.0, 0.0]
        assert pool.peak_ghz == pytest.approx(9.0)

    def test_queues_when_full(self):
        sim = Simulator()
        pool = ComputePool(sim, 10.0)
        starts = []
        sim.schedule(0.0, lambda: pool.acquire(8.0, 2.0, lambda: starts.append(sim.now)))
        sim.schedule(0.0, lambda: pool.acquire(5.0, 1.0, lambda: starts.append(sim.now)))
        sim.run()
        assert starts == [0.0, 2.0]

    def test_head_of_line_blocking(self):
        sim = Simulator()
        pool = ComputePool(sim, 10.0)
        starts = {}
        sim.schedule(0.0, lambda: pool.acquire(8.0, 4.0, lambda: starts.setdefault("big", sim.now)))
        sim.schedule(0.0, lambda: pool.acquire(6.0, 1.0, lambda: starts.setdefault("blocked", sim.now)))
        sim.schedule(0.0, lambda: pool.acquire(1.0, 1.0, lambda: starts.setdefault("small", sim.now)))
        sim.run()
        # FIFO: the small task waits behind the blocked head-of-line task.
        assert starts["big"] == 0.0
        assert starts["blocked"] == 4.0
        assert starts["small"] == 4.0

    def test_oversized_request_rejected(self):
        sim = Simulator()
        pool = ComputePool(sim, 10.0)
        with pytest.raises(ValueError, match="GHz"):
            pool.acquire(11.0, 1.0, lambda: None)

    def test_ghz_seconds_accounting(self):
        sim = Simulator()
        pool = ComputePool(sim, 10.0)
        sim.schedule(0.0, lambda: pool.acquire(2.0, 3.0, lambda: None))
        sim.run()
        assert pool.ghz_seconds == pytest.approx(6.0)
        assert pool.in_use_ghz == 0.0
