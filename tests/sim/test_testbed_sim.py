"""Tests for the end-to-end testbed emulation."""

import pytest

from repro.core import make_algorithm
from repro.core.metrics import verify_solution
from repro.sim.testbed import run_testbed_experiment
from repro.sim.testbed import TestbedExperiment as TbExperiment  # avoid Test* collection
from repro.workload.trace import TraceConfig

FAST = TbExperiment(
    trace=TraceConfig(num_users=150, num_apps=40, days=20),
    num_datasets=8,
    num_queries=25,
    seed=5,
)


@pytest.fixture(scope="module")
def appro_report():
    return run_testbed_experiment(make_algorithm("appro-g"), FAST)


class TestPipeline:
    def test_report_complete(self, appro_report):
        assert appro_report.metrics.num_queries == 25
        assert appro_report.analytics_checked == appro_report.metrics.num_admitted

    def test_results_faithful(self, appro_report):
        """Replica evaluation returns ground-truth analytics answers."""
        assert appro_report.results_faithful

    def test_execution_covers_admitted(self, appro_report):
        assert appro_report.execution.num_executed == (
            appro_report.metrics.num_admitted
        )

    def test_solution_verified_internally(self, appro_report):
        # run_testbed_experiment verifies; re-verify the exported solution
        # shape at least structurally.
        assert appro_report.solution.admitted.isdisjoint(
            appro_report.solution.rejected
        )

    def test_deterministic(self):
        r1 = run_testbed_experiment(make_algorithm("appro-g"), FAST)
        r2 = run_testbed_experiment(make_algorithm("appro-g"), FAST)
        assert r1.metrics.admitted_volume_gb == pytest.approx(
            r2.metrics.admitted_volume_gb
        )
        assert r1.solution.admitted == r2.solution.admitted

    def test_popularity_also_runs(self):
        report = run_testbed_experiment(make_algorithm("popularity-g"), FAST)
        assert report.results_faithful
        assert 0.0 <= report.metrics.throughput <= 1.0

    def test_different_seeds_differ(self):
        import dataclasses

        other = dataclasses.replace(FAST, seed=6)
        r1 = run_testbed_experiment(make_algorithm("appro-g"), FAST)
        r2 = run_testbed_experiment(make_algorithm("appro-g"), other)
        assert (
            r1.metrics.admitted_volume_gb != r2.metrics.admitted_volume_gb
            or r1.solution.admitted != r2.solution.admitted
        )
