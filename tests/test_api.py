"""Public-API surface checks: everything advertised is importable and real."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.util",
    "repro.topology",
    "repro.network",
    "repro.workload",
    "repro.cluster",
    "repro.core",
    "repro.sim",
    "repro.experiments",
    "repro.io",
]


@pytest.mark.parametrize("package", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_all_names_unique(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))

    def test_module_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip()


class TestPublicDocstrings:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_every_public_item_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj) or isinstance(obj, type):
                if not (getattr(obj, "__doc__", None) or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"{package}: undocumented {undocumented}"


class TestVersion:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_quick_compare_smoke(self):
        from repro import quick_compare

        results = quick_compare(seed=9, algorithms=("appro-g",))
        assert "appro-g" in results
