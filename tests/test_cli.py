"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.obs import NULL_REGISTRY, get_registry, parse_prometheus_text, read_jsonl


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.repeats == 15
        assert "appro-g" in args.algorithms


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "appro-g" in out
        assert "greedy-s" in out

    def test_compare(self, capsys):
        code = main(
            ["compare", "--repeats", "2", "--seed", "7",
             "--algorithms", "appro-g,greedy-g"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "appro-g" in out and "greedy-g" in out
        assert "±" in out

    def test_compare_unknown_algorithm(self, capsys):
        code = main(["compare", "--algorithms", "nope"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err

    def test_figure(self, capsys):
        code = main(["figure", "fig4", "--repeats", "1", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig4(a)" in out and "fig4(b)" in out

    def test_testbed(self, capsys):
        code = main(
            ["testbed", "--queries", "15", "--datasets", "6", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "admitted" in out
        assert "faithful: True" in out

    def test_testbed_unknown_algorithm(self, capsys):
        code = main(["testbed", "--algorithm", "bogus"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err


class TestExtensionCommands:
    def test_online(self, capsys):
        code = main(["online", "--gap", "0.5", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "admitted volume" in out
        assert "throughput" in out

    def test_online_greedy_rule(self, capsys):
        assert main(["online", "--rule", "greedy", "--gap", "0.5"]) == 0
        assert "greedy" in capsys.readouterr().out

    def test_online_with_faults(self, capsys):
        code = main(
            [
                "online",
                "--gap", "0.5",
                "--seed", "1",
                "--hold-factor", "20",
                "--faults",
                "--mttf", "2.0",
                "--downtime", "0.5",
                "--fault-seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "crashes" in out
        assert "availability" in out
        assert "degraded admit" in out

    def test_online_without_faults_omits_fault_lines(self, capsys):
        assert main(["online", "--gap", "0.5", "--seed", "1"]) == 0
        assert "crashes" not in capsys.readouterr().out

    def test_failover(self, capsys):
        code = main(["failover", "--failures", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "volume retention" in out

    def test_failover_unknown_algorithm(self, capsys):
        assert main(["failover", "--algorithm", "zzz"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_figure_plot_mode(self, capsys):
        code = main(["figure", "fig4", "--repeats", "1", "--plot"])
        assert code == 0
        assert "│" in capsys.readouterr().out

    def test_explain(self, capsys):
        code = main(["explain", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "admitted" in out and "rejected" in out

    def test_explain_unknown_algorithm(self, capsys):
        assert main(["explain", "--algorithm", "zzz"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_describe(self, capsys):
        code = main(["describe", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "instance profile" in out
        assert "compute pressure" in out

    @pytest.mark.parametrize("kind", ["paper", "testbed", "figure1"])
    def test_topology(self, capsys, kind):
        code = main(["topology", "--kind", kind])
        assert code == 0
        out = capsys.readouterr().out
        assert "topology summary" in out
        assert "D=data center" in out

    def test_report_to_stdout(self, capsys, tmp_path):
        from repro.experiments.report import build_report

        (tmp_path / "fig2.txt").write_text("demo table\n")
        code = main(["report", "--results-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Regenerated results" in out
        assert "demo table" in out

    def test_report_missing_dir(self, capsys, tmp_path):
        code = main(["report", "--results-dir", str(tmp_path / "nope")])
        assert code == 2
        assert "bench" in capsys.readouterr().err

    def test_report_to_file(self, tmp_path, capsys):
        (tmp_path / "fig4.txt").write_text("t\n")
        out_file = tmp_path / "REPORT.md"
        code = main([
            "report", "--results-dir", str(tmp_path), "--output", str(out_file)
        ])
        assert code == 0
        assert out_file.read_text().startswith("# Regenerated results")


class TestObservabilityFlags:
    def test_trace_and_metrics_files_written(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        code = main(
            ["--trace", str(trace), "--metrics", str(metrics),
             "failover", "--failures", "1", "--seed", "1"]
        )
        assert code == 0
        events = read_jsonl(trace)
        spans = [e for e in events if e["type"] == "span"]
        # The whole invocation is one root span; the solve nests under it.
        assert any(
            s["name"] == "cli.failover" and s["parent"] is None for s in spans
        )
        assert any(s["name"] == "algo.appro-g.solve" for s in spans)
        samples = parse_prometheus_text(metrics.read_text())
        admitted = samples["repro_algo_appro_g_admitted_total"]
        rejected = samples["repro_algo_appro_g_rejected_total"]
        assert admitted + rejected > 0
        assert samples["repro_algo_appro_g_admission_s_count"] == admitted + rejected

    def test_trace_flag_alone(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["--trace", str(trace), "list"]) == 0
        events = read_jsonl(trace)
        assert any(
            e["type"] == "span" and e["name"] == "cli.list" for e in events
        )

    def test_registry_restored_after_run(self, capsys, tmp_path):
        main(["--metrics", str(tmp_path / "m.prom"), "list"])
        assert get_registry() is NULL_REGISTRY

    def test_without_flags_no_files(self, capsys, tmp_path):
        assert main(["list"]) == 0
        assert list(tmp_path.iterdir()) == []
