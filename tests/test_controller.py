"""Tests for the edge-cloud controller facade."""

import pytest

from repro.controller import EdgeCloudController
from repro.obs import MetricsRegistry, use_registry
from repro.topology.twotier import generate_two_tier
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.datasets import generate_datasets
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_queries


@pytest.fixture()
def setup():
    topology = generate_two_tier(seed=12)
    params = PaperDefaults()
    datasets = generate_datasets(topology, spawn_rng(12, "ds"), params, count=10)
    queries = [
        generate_queries(topology, datasets, spawn_rng(12, f"q{e}"), params, count=40)
        for e in range(3)
    ]
    controller = EdgeCloudController(topology, datasets)
    return controller, queries


class TestLifecycle:
    def test_place_and_metrics(self, setup):
        controller, queries = setup
        metrics = controller.place(queries[0])
        assert controller.has_placement
        assert metrics.admitted_volume_gb >= 0
        assert controller.metrics().num_queries == 40

    def test_operations_before_place_rejected(self, setup):
        controller, _ = setup
        with pytest.raises(ValidationError, match="place"):
            controller.execute()
        with pytest.raises(ValidationError):
            _ = controller.solution

    def test_execute_reports_latencies(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        report = controller.execute(contention=False)
        assert report.num_executed == controller.metrics().num_admitted
        assert report.deadline_violations == 0

    def test_maintenance_and_invoice(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        sync = controller.maintenance_report()
        invoice = controller.invoice()
        assert sync.shipped_gb >= 0
        assert invoice.revenue >= 0

    def test_failure_adopts_repaired_placement(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        victim = next(
            a.node for a in controller.solution.assignments.values()
        )
        report = controller.handle_failure([victim])
        assert 0.0 <= report.availability <= 1.0 + 1e-9
        # The adopted placement no longer uses the failed node.
        assert all(
            a.node != victim for a in controller.solution.assignments.values()
        )

    def test_epoch_transition_carries_replicas(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        report = controller.next_epoch(queries[1])
        assert controller.epoch == 1
        assert report.kept + report.added >= 0
        # The controller's active instance is the new epoch's.
        assert controller.instance.queries[0] == queries[1][0]

    def test_epoch_before_place_rejected(self, setup):
        controller, queries = setup
        with pytest.raises(ValidationError):
            controller.next_epoch(queries[0])

    def test_failed_nodes_not_recarried(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        victim = next(
            v
            for nodes in controller.solution.replicas.values()
            for v in nodes
        )
        controller.handle_failure([victim])
        controller.next_epoch(queries[1])
        # Replicas carried into the new epoch exclude the failed node,
        # except for immovable origin records.
        origins = {d.origin_node for d in controller.instance.datasets.values()}
        for nodes in controller.solution.replicas.items():
            pass  # structural check below
        carried = controller._planner.carried or {}
        for nodes in carried.values():
            assert victim not in nodes or victim in origins


class TestAuditTrail:
    def test_log_records_operations(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        controller.execute()
        controller.maintenance_report()
        controller.next_epoch(queries[1])
        trail = controller.audit_trail()
        for op in ("place", "execute", "maintenance", "epoch"):
            assert op in trail

    def test_epoch_counter_in_log(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        controller.next_epoch(queries[1])
        controller.next_epoch(queries[2])
        assert controller.log[-1].epoch == 2

    def test_every_operation_appends_exactly_one_event(self, setup):
        controller, queries = setup
        expected: list[str] = []

        def check(operation):
            expected.append(operation)
            assert len(controller.log) == len(expected)
            assert [e.operation for e in controller.log] == expected

        controller.place(queries[0])
        check("place")
        controller.execute()
        check("execute")
        controller.maintenance_report()
        check("maintenance")
        controller.invoice()
        check("invoice")
        victim = next(a.node for a in controller.solution.assignments.values())
        controller.handle_failure([victim])
        check("failure")
        controller.next_epoch(queries[1])
        check("epoch")


class TestObservability:
    """Controller spans mirror the audit trail (see docs/observability.md)."""

    def _run_session(self, controller, queries):
        controller.place(queries[0])
        controller.execute()
        controller.maintenance_report()
        controller.invoice()
        victim = next(a.node for a in controller.solution.assignments.values())
        controller.handle_failure([victim])
        controller.next_epoch(queries[1])
        controller.next_epoch(queries[2])

    def test_one_span_per_controller_operation(self, setup):
        controller, queries = setup
        registry = MetricsRegistry()
        with use_registry(registry):
            self._run_session(controller, queries)
        controller_spans = [
            s for s in registry.spans if s.name.startswith("controller.")
        ]
        assert len(controller_spans) == len(controller.log)
        assert registry.counter("controller.events") == len(controller.log)

    def test_spans_carry_matching_epoch_and_operation(self, setup):
        controller, queries = setup
        registry = MetricsRegistry()
        with use_registry(registry):
            self._run_session(controller, queries)
        controller_spans = [
            s for s in registry.spans if s.name.startswith("controller.")
        ]
        # Controller operations are sequential, so completion order of the
        # controller spans matches audit-log order.
        for span, event in zip(controller_spans, controller.log):
            assert span.attributes["operation"] == event.operation
            assert span.attributes["epoch"] == event.epoch
            assert span.error is None

    def test_execute_nests_simulator_span(self, setup):
        controller, queries = setup
        registry = MetricsRegistry()
        with use_registry(registry):
            controller.place(queries[0])
            controller.execute()
        (sim_span,) = registry.find_spans("sim.execute_placement")
        assert sim_span.parent == "controller.execute"
        latencies = registry.summary("sim.query_response_s")
        assert latencies is not None
        assert latencies.count == controller.metrics().num_admitted

    def test_no_spans_recorded_under_default_registry(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        # Nothing was installed, so nothing could have been recorded; the
        # audit trail is the only side channel.
        assert len(controller.log) == 1


class TestPersistence:
    def test_snapshot_restore_round_trip(self, setup, tmp_path):
        controller, queries = setup
        controller.place(queries[0])
        controller.next_epoch(queries[1])
        path = tmp_path / "session.json"
        controller.snapshot(path)
        clone = EdgeCloudController.restore(path)
        assert clone.epoch == controller.epoch
        assert clone.algorithm == controller.algorithm
        assert clone.solution.admitted == controller.solution.admitted
        assert dict(clone.solution.replicas) == dict(controller.solution.replicas)
        assert clone.metrics().admitted_volume_gb == pytest.approx(
            controller.metrics().admitted_volume_gb
        )

    def test_audit_events_recorded(self, setup, tmp_path):
        controller, queries = setup
        controller.place(queries[0])
        path = tmp_path / "session.json"
        controller.snapshot(path)
        assert controller.log[-1].operation == "snapshot"
        clone = EdgeCloudController.restore(path)
        # The restored log carries the whole history: the original
        # operations, the snapshot that saved them, and the restore.
        assert [e.operation for e in clone.log] == [
            "place",
            "snapshot",
            "restore",
        ]

    def test_snapshot_before_place(self, setup, tmp_path):
        """A session without a placement still round-trips its datasets."""
        controller, queries = setup
        path = tmp_path / "session.json"
        controller.snapshot(path)
        clone = EdgeCloudController.restore(path)
        assert not clone.has_placement
        assert set(clone.datasets) == set(controller.datasets)
        clone.place(queries[0])
        assert clone.has_placement

    def test_failed_nodes_survive_restore(self, setup, tmp_path):
        controller, queries = setup
        controller.place(queries[0])
        victim = next(iter(controller.solution.replicas.values()))[0]
        controller.handle_failure([victim])
        path = tmp_path / "session.json"
        controller.snapshot(path)
        clone = EdgeCloudController.restore(path)
        assert victim in clone._failed

    def test_bad_format_rejected(self, setup, tmp_path):
        import json

        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValidationError, match="format"):
            EdgeCloudController.restore(path)
