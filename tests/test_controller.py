"""Tests for the edge-cloud controller facade."""

import pytest

from repro.controller import EdgeCloudController
from repro.topology.twotier import generate_two_tier
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.datasets import generate_datasets
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_queries


@pytest.fixture()
def setup():
    topology = generate_two_tier(seed=12)
    params = PaperDefaults()
    datasets = generate_datasets(topology, spawn_rng(12, "ds"), params, count=10)
    queries = [
        generate_queries(topology, datasets, spawn_rng(12, f"q{e}"), params, count=40)
        for e in range(3)
    ]
    controller = EdgeCloudController(topology, datasets)
    return controller, queries


class TestLifecycle:
    def test_place_and_metrics(self, setup):
        controller, queries = setup
        metrics = controller.place(queries[0])
        assert controller.has_placement
        assert metrics.admitted_volume_gb >= 0
        assert controller.metrics().num_queries == 40

    def test_operations_before_place_rejected(self, setup):
        controller, _ = setup
        with pytest.raises(ValidationError, match="place"):
            controller.execute()
        with pytest.raises(ValidationError):
            _ = controller.solution

    def test_execute_reports_latencies(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        report = controller.execute(contention=False)
        assert report.num_executed == controller.metrics().num_admitted
        assert report.deadline_violations == 0

    def test_maintenance_and_invoice(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        sync = controller.maintenance_report()
        invoice = controller.invoice()
        assert sync.shipped_gb >= 0
        assert invoice.revenue >= 0

    def test_failure_adopts_repaired_placement(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        victim = next(
            a.node for a in controller.solution.assignments.values()
        )
        report = controller.handle_failure([victim])
        assert 0.0 <= report.availability <= 1.0 + 1e-9
        # The adopted placement no longer uses the failed node.
        assert all(
            a.node != victim for a in controller.solution.assignments.values()
        )

    def test_epoch_transition_carries_replicas(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        report = controller.next_epoch(queries[1])
        assert controller.epoch == 1
        assert report.kept + report.added >= 0
        # The controller's active instance is the new epoch's.
        assert controller.instance.queries[0] == queries[1][0]

    def test_epoch_before_place_rejected(self, setup):
        controller, queries = setup
        with pytest.raises(ValidationError):
            controller.next_epoch(queries[0])

    def test_failed_nodes_not_recarried(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        victim = next(
            v
            for nodes in controller.solution.replicas.values()
            for v in nodes
        )
        controller.handle_failure([victim])
        controller.next_epoch(queries[1])
        # Replicas carried into the new epoch exclude the failed node,
        # except for immovable origin records.
        origins = {d.origin_node for d in controller.instance.datasets.values()}
        for nodes in controller.solution.replicas.items():
            pass  # structural check below
        carried = controller._planner.carried or {}
        for nodes in carried.values():
            assert victim not in nodes or victim in origins


class TestAuditTrail:
    def test_log_records_operations(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        controller.execute()
        controller.maintenance_report()
        controller.next_epoch(queries[1])
        trail = controller.audit_trail()
        for op in ("place", "execute", "maintenance", "epoch"):
            assert op in trail

    def test_epoch_counter_in_log(self, setup):
        controller, queries = setup
        controller.place(queries[0])
        controller.next_epoch(queries[1])
        controller.next_epoch(queries[2])
        assert controller.log[-1].epoch == 2
