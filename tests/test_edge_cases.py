"""Degenerate and boundary instances every component must survive."""

import pytest

from repro.core import (
    evaluate_solution,
    make_algorithm,
    solve_ilp,
    solve_lp_relaxation,
    verify_solution,
)
from repro.core.instance import ProblemInstance
from repro.core.types import Dataset, Query
from repro.sim import execute_placement
from repro.topology.twotier import TwoTierConfig, generate_two_tier

ALL_GENERAL = (
    "appro-g",
    "greedy-g",
    "graph-g",
    "popularity-g",
    "lp-rounding-g",
    "appro-bw-g",
)


@pytest.fixture(scope="module")
def micro_topology():
    return generate_two_tier(
        TwoTierConfig(
            num_data_centers=1,
            num_cloudlets=2,
            num_switches=1,
            num_base_stations=1,
        ),
        seed=0,
    )


class TestEmptyQuerySet:
    @pytest.mark.parametrize("algo", ALL_GENERAL)
    def test_all_algorithms_handle_no_queries(self, micro_topology, algo):
        pn = micro_topology.placement_nodes
        instance = ProblemInstance(
            topology=micro_topology,
            datasets={0: Dataset(0, 1.0, pn[0])},
            queries=[],
            max_replicas=2,
        )
        solution = make_algorithm(algo).solve(instance)
        verify_solution(instance, solution)
        metrics = evaluate_solution(instance, solution)
        assert metrics.admitted_volume_gb == 0.0
        assert metrics.throughput == 0.0

    def test_lp_and_ilp_on_empty(self, micro_topology):
        pn = micro_topology.placement_nodes
        instance = ProblemInstance(
            topology=micro_topology,
            datasets={0: Dataset(0, 1.0, pn[0])},
            queries=[],
            max_replicas=2,
        )
        assert solve_lp_relaxation(instance).objective == pytest.approx(0.0)
        assert solve_ilp(instance).objective == pytest.approx(0.0)

    def test_execute_empty_solution(self, micro_topology):
        pn = micro_topology.placement_nodes
        instance = ProblemInstance(
            topology=micro_topology,
            datasets={0: Dataset(0, 1.0, pn[0])},
            queries=[],
            max_replicas=2,
        )
        solution = make_algorithm("appro-g").solve(instance)
        report = execute_placement(instance, solution)
        assert report.num_executed == 0


class TestExtremeK:
    @pytest.mark.parametrize("algo", ("appro-g", "greedy-g", "graph-g"))
    def test_k_larger_than_node_count(self, micro_topology, algo):
        pn = micro_topology.placement_nodes
        instance = ProblemInstance(
            topology=micro_topology,
            datasets={0: Dataset(0, 1.0, pn[0])},
            queries=[Query(0, pn[0], (0,), (0.5,), 1.0, 100.0)],
            max_replicas=10_000,
        )
        solution = make_algorithm(algo).solve(instance)
        verify_solution(instance, solution)
        # Replicas can never exceed the node count regardless of K.
        assert all(
            len(nodes) <= len(pn) for nodes in solution.replicas.values()
        )


class TestSingleNodeWorld:
    def test_everything_served_at_origin(self):
        topology = generate_two_tier(
            TwoTierConfig(
                num_data_centers=1,
                num_cloudlets=1,
                num_switches=1,
                num_base_stations=1,
            ),
            seed=3,
        )
        cl = topology.cloudlets[0]
        instance = ProblemInstance(
            topology=topology,
            datasets={0: Dataset(0, 2.0, cl)},
            queries=[Query(0, cl, (0,), (0.5,), 1.0, 10.0)],
            max_replicas=1,
        )
        solution = make_algorithm("appro-g").solve(instance)
        verify_solution(instance, solution)
        assert solution.num_admitted == 1
        assert solution.assignments[(0, 0)].node == cl


class TestHugeDemandSingleQuery:
    def test_oversized_query_rejected_cleanly(self, micro_topology):
        """A query whose compute demand exceeds every node is rejected,
        never crashes capacity accounting."""
        pn = micro_topology.placement_nodes
        instance = ProblemInstance(
            topology=micro_topology,
            datasets={0: Dataset(0, 5000.0, pn[0])},
            queries=[Query(0, pn[0], (0,), (0.5,), 1.0, 1e9)],
            max_replicas=2,
        )
        for algo in ("appro-g", "greedy-g", "popularity-g"):
            solution = make_algorithm(algo).solve(instance)
            verify_solution(instance, solution)
            assert solution.num_admitted == 0


class TestAllQueriesIdentical:
    def test_capacity_splits_identical_queries(self, micro_topology):
        """Many copies of one query fill capacity then reject the rest."""
        pn = micro_topology.placement_nodes
        queries = [
            Query(m, pn[1], (0,), (0.5,), 1.0, 100.0) for m in range(200)
        ]
        instance = ProblemInstance(
            topology=micro_topology,
            datasets={0: Dataset(0, 4.0, pn[0])},
            queries=queries,
            max_replicas=3,
        )
        solution = make_algorithm("appro-g").solve(instance)
        verify_solution(instance, solution)
        total_capacity = sum(
            micro_topology.capacity(v) for v in pn
        )
        used = sum(a.compute_ghz for a in solution.assignments.values())
        assert used <= total_capacity * (1 + 1e-9)
        assert 0 < solution.num_admitted < 200
