"""End-to-end integration tests across all subsystems.

Each test exercises a full pipeline: topology → workload → placement →
verification → event-simulated execution (→ analytics where applicable).
"""

from __future__ import annotations

import math
import subprocess
import sys
from pathlib import Path

import pytest

from repro import quick_compare
from repro.core import evaluate_solution, make_algorithm, verify_solution
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import figure4
from repro.experiments.runner import make_instance
from repro.sim.execution import ExecutionConfig, execute_placement
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestFullSimulationPipeline:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("algo", ["appro-g", "greedy-g", "graph-g", "popularity-g"])
    def test_placement_executes_within_deadlines(self, seed, algo):
        """Analytic admission is sound: the event simulator confirms every
        admitted query's measured latency beats its QoS deadline."""
        instance = make_instance(TwoTierConfig(), PaperDefaults(), seed, 0)
        solution = make_algorithm(algo).solve(instance)
        verify_solution(instance, solution)
        report = execute_placement(instance, solution)
        assert report.deadline_violations == 0
        for outcome in report.outcomes:
            analytic = max(
                a.latency_s for a in solution.served_pairs(outcome.query_id)
            )
            assert math.isclose(outcome.response_s, analytic, rel_tol=1e-9)

    def test_paper_ordering_on_default_regime(self):
        """Averaged over several instances, the paper's ordering holds:
        Appro ≥ Graph > Greedy and Appro > Popularity on volume."""
        sums = {n: 0.0 for n in ("appro-g", "greedy-g", "graph-g", "popularity-g")}
        for seed in range(8):
            instance = make_instance(TwoTierConfig(), PaperDefaults(), seed, 0)
            for name in sums:
                sums[name] += evaluate_solution(
                    instance, make_algorithm(name).solve(instance)
                ).admitted_volume_gb
        assert sums["appro-g"] > sums["graph-g"]
        assert sums["graph-g"] > sums["greedy-g"]
        assert sums["appro-g"] > 1.5 * sums["greedy-g"]
        assert sums["appro-g"] > 1.5 * sums["popularity-g"]

    def test_special_case_ordering(self):
        sums = {n: 0.0 for n in ("appro-s", "greedy-s", "graph-s")}
        params = PaperDefaults().single_dataset()
        for seed in range(8):
            instance = make_instance(TwoTierConfig(), params, seed, 0)
            for name in sums:
                sums[name] += evaluate_solution(
                    instance, make_algorithm(name).solve(instance)
                ).admitted_volume_gb
        assert sums["appro-s"] >= sums["graph-s"] * 0.95
        assert sums["appro-s"] > 2.0 * sums["greedy-s"]

    def test_quick_compare_entry_point(self):
        results = quick_compare(seed=4)
        assert set(results) == {"appro-g", "greedy-g", "graph-g", "popularity-g"}
        for metrics in results.values():
            assert 0.0 <= metrics.throughput <= 1.0


class TestFigurePipeline:
    def test_figure4_shapes_at_low_repeats(self):
        series = figure4(ExperimentConfig(repeats=2, seed=17))
        t = series.throughput["appro-g"]
        assert t[0] > t[-1]
        v = series.volume["appro-g"]
        assert max(v) > v[0] * 0.9


class TestMoreReplicasNeverHurt:
    def test_k_monotonicity_on_average(self):
        """Raising K weakly improves Appro-G's admitted volume on average
        (paper Fig. 5 trend)."""
        totals = []
        for k in (1, 3, 5):
            params = PaperDefaults().with_max_replicas(k)
            total = 0.0
            for seed in range(6):
                instance = make_instance(TwoTierConfig(), params, seed, 0)
                total += evaluate_solution(
                    instance, make_algorithm("appro-g").solve(instance)
                ).admitted_volume_gb
            totals.append(total)
        assert totals[0] < totals[1] < totals[2]


class TestExamplesRun:
    """Every shipped example must execute cleanly as a script."""

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "edge_video_analytics.py",
            "mobile_usage_testbed.py",
            "capacity_planning.py",
            "distributed_query_plans.py",
            "operations_lifecycle.py",
        ],
    )
    def test_example_runs(self, script):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / script)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()
