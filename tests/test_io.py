"""Tests for serialisation round-trips."""

import json

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.core import evaluate_solution, make_algorithm, verify_solution
from repro.io import (
    atomic_write_text,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_solution,
    load_state,
    load_trace,
    save_instance,
    save_solution,
    save_state,
    save_trace,
    solution_from_dict,
    solution_to_dict,
    state_from_dict,
    state_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.trace import TraceConfig, generate_usage_trace


class TestTopologyRoundTrip:
    def test_preserves_everything(self, paper_topology):
        clone = topology_from_dict(topology_to_dict(paper_topology))
        assert clone.link_delays == paper_topology.link_delays
        assert len(clone.nodes) == len(paper_topology.nodes)
        for a, b in zip(clone.nodes, paper_topology.nodes):
            assert a == b

    def test_json_serialisable(self, paper_topology):
        json.dumps(topology_to_dict(paper_topology))

    def test_format_checked(self, paper_topology):
        payload = topology_to_dict(paper_topology)
        payload["format"] = "bogus"
        with pytest.raises(ValidationError, match="format"):
            topology_from_dict(payload)


class TestInstanceRoundTrip:
    def test_preserves_workload(self, paper_instance):
        clone = instance_from_dict(instance_to_dict(paper_instance))
        assert clone.num_queries == paper_instance.num_queries
        assert clone.max_replicas == paper_instance.max_replicas
        for a, b in zip(clone.queries, paper_instance.queries):
            assert a == b
        assert dict(clone.datasets) == dict(paper_instance.datasets)

    def test_file_round_trip(self, paper_instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(paper_instance, path)
        clone = load_instance(path)
        assert clone.total_demanded_volume() == pytest.approx(
            paper_instance.total_demanded_volume()
        )

    def test_algorithms_agree_on_clone(self, paper_instance, tmp_path):
        """A reloaded instance produces bit-identical solutions."""
        path = tmp_path / "instance.json"
        save_instance(paper_instance, path)
        clone = load_instance(path)
        s1 = make_algorithm("appro-g").solve(paper_instance)
        s2 = make_algorithm("appro-g").solve(clone)
        assert s1.admitted == s2.admitted
        assert dict(s1.replicas) == dict(s2.replicas)

    def test_corrupted_instance_rejected(self, paper_instance):
        payload = instance_to_dict(paper_instance)
        payload["queries"][0]["demanded"] = [999]  # unknown dataset
        with pytest.raises(ValidationError):
            instance_from_dict(payload)


class TestSolutionRoundTrip:
    def test_preserves_solution(self, paper_instance, tmp_path):
        solution = make_algorithm("appro-g").solve(paper_instance)
        path = tmp_path / "solution.json"
        save_solution(solution, path)
        clone = load_solution(path)
        assert clone.admitted == solution.admitted
        assert dict(clone.replicas) == dict(solution.replicas)
        assert set(clone.assignments) == set(solution.assignments)
        verify_solution(paper_instance, clone)
        assert evaluate_solution(
            paper_instance, clone
        ).admitted_volume_gb == pytest.approx(
            evaluate_solution(paper_instance, solution).admitted_volume_gb
        )

    def test_extras_preserved(self, paper_instance):
        solution = make_algorithm("appro-g").solve(paper_instance)
        clone = solution_from_dict(solution_to_dict(solution))
        assert dict(clone.extras) == dict(solution.extras)


def _occupied_state(instance) -> ClusterState:
    """A cluster state with live allocations and replicas to round-trip."""
    state = ClusterState(instance)
    for query in instance.queries:
        for d_id in query.demanded:
            dataset = instance.dataset(d_id)
            mask = state.can_serve_mask(query, dataset)
            if mask.any():
                node = instance.placement_nodes[int(np.argmax(mask))]
                state.serve(query, dataset, node)
    return state


class TestStateRoundTrip:
    def test_bit_identical(self, tiny_instance):
        state = _occupied_state(tiny_instance)
        clone = state_from_dict(state_to_dict(state), tiny_instance)
        assert np.array_equal(clone.available_array(), state.available_array())
        assert clone.replicas.replica_map() == state.replicas.replica_map()
        assert clone.down_nodes() == state.down_nodes()
        for v, ledger in state.nodes.items():
            assert clone.nodes[v].allocation_tags() == ledger.allocation_tags()
            assert clone.nodes[v].snapshot() == ledger.snapshot()
            assert clone.nodes[v].reserved_ghz == ledger.reserved_ghz

    def test_bit_identical_after_release(self, tiny_instance):
        """Allocate/release churn leaves no float drift vs a replayed clone."""
        state = _occupied_state(tiny_instance)
        query = tiny_instance.queries[1]
        tag = (query.query_id, query.demanded[0])
        for ledger in state.nodes.values():
            if tag in ledger.allocation_tags():
                ledger.release(tag)
                break
        clone = state_from_dict(state_to_dict(state), tiny_instance)
        assert np.array_equal(clone.available_array(), state.available_array())

    def test_liveness_round_trip(self, tiny_instance):
        """Down nodes, evicted allocations, and the surviving origin ledger
        all reappear after a dump/restore cycle (the PR-4 fault fields)."""
        state = _occupied_state(tiny_instance)
        victim = next(
            v for v, ledger in state.nodes.items() if ledger.allocation_tags()
        )
        state.mark_down(victim)
        evicted = state.evict_allocations(victim)
        assert evicted
        state.drop_replicas(victim)
        clone = state_from_dict(state_to_dict(state), tiny_instance)
        assert clone.down_nodes() == frozenset({victim})
        assert clone.has_down_nodes
        assert clone.nodes[victim].allocation_tags() == ()
        assert clone.replicas.replica_map() == state.replicas.replica_map()
        # The origin ledger is not derived from surviving copies: every
        # dataset still knows its authoritative node.
        for d_id in tiny_instance.datasets:
            assert clone.replicas.origin(d_id) == state.replicas.origin(d_id)
        assert np.array_equal(clone.up_mask(), state.up_mask())

    def test_file_round_trip(self, tiny_instance, tmp_path):
        state = _occupied_state(tiny_instance)
        path = tmp_path / "state.json"
        save_state(state, path)
        clone = load_state(path, instance=tiny_instance)
        assert np.array_equal(clone.available_array(), state.available_array())
        assert clone.replicas.replica_map() == state.replicas.replica_map()

    def test_embedded_instance_round_trip(self, tiny_instance, tmp_path):
        """Without a shared instance, the dump's embedded copy rebuilds one."""
        state = _occupied_state(tiny_instance)
        path = tmp_path / "state.json"
        save_state(state, path)
        clone = load_state(path)
        assert clone.instance.num_queries == tiny_instance.num_queries
        assert np.array_equal(clone.available_array(), state.available_array())

    def test_format_checked(self, tiny_instance):
        payload = state_to_dict(_occupied_state(tiny_instance))
        payload["format"] = "bogus"
        with pytest.raises(ValidationError, match="format"):
            state_from_dict(payload, tiny_instance)

    def test_unknown_dataset_rejected(self, tiny_instance):
        payload = state_to_dict(_occupied_state(tiny_instance))
        payload["replicas"]["999"] = [tiny_instance.placement_nodes[0]]
        with pytest.raises(ValidationError, match="unknown dataset"):
            state_from_dict(payload, tiny_instance)


class TestAtomicWrite:
    def test_writes_and_overwrites(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "one")
        assert path.read_text() == "one"
        atomic_write_text(path, "two")
        assert path.read_text() == "two"

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "payload")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestTraceRoundTrip:
    def test_npz_round_trip(self, tmp_path):
        trace = generate_usage_trace(
            TraceConfig(num_users=50, num_apps=10, days=5), spawn_rng(0, "t")
        )
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        clone = load_trace(path)
        assert np.array_equal(clone.user, trace.user)
        assert np.array_equal(clone.app, trace.app)
        assert np.array_equal(clone.timestamp_s, trace.timestamp_s)
        assert clone.total_bytes == trace.total_bytes

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, format=np.array("other"), user=np.zeros(1))
        with pytest.raises(ValidationError):
            load_trace(path)
