"""Tests for serialisation round-trips."""

import json

import numpy as np
import pytest

from repro.core import evaluate_solution, make_algorithm, verify_solution
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_solution,
    load_trace,
    save_instance,
    save_solution,
    save_trace,
    solution_from_dict,
    solution_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.trace import TraceConfig, generate_usage_trace


class TestTopologyRoundTrip:
    def test_preserves_everything(self, paper_topology):
        clone = topology_from_dict(topology_to_dict(paper_topology))
        assert clone.link_delays == paper_topology.link_delays
        assert len(clone.nodes) == len(paper_topology.nodes)
        for a, b in zip(clone.nodes, paper_topology.nodes):
            assert a == b

    def test_json_serialisable(self, paper_topology):
        json.dumps(topology_to_dict(paper_topology))

    def test_format_checked(self, paper_topology):
        payload = topology_to_dict(paper_topology)
        payload["format"] = "bogus"
        with pytest.raises(ValidationError, match="format"):
            topology_from_dict(payload)


class TestInstanceRoundTrip:
    def test_preserves_workload(self, paper_instance):
        clone = instance_from_dict(instance_to_dict(paper_instance))
        assert clone.num_queries == paper_instance.num_queries
        assert clone.max_replicas == paper_instance.max_replicas
        for a, b in zip(clone.queries, paper_instance.queries):
            assert a == b
        assert dict(clone.datasets) == dict(paper_instance.datasets)

    def test_file_round_trip(self, paper_instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(paper_instance, path)
        clone = load_instance(path)
        assert clone.total_demanded_volume() == pytest.approx(
            paper_instance.total_demanded_volume()
        )

    def test_algorithms_agree_on_clone(self, paper_instance, tmp_path):
        """A reloaded instance produces bit-identical solutions."""
        path = tmp_path / "instance.json"
        save_instance(paper_instance, path)
        clone = load_instance(path)
        s1 = make_algorithm("appro-g").solve(paper_instance)
        s2 = make_algorithm("appro-g").solve(clone)
        assert s1.admitted == s2.admitted
        assert dict(s1.replicas) == dict(s2.replicas)

    def test_corrupted_instance_rejected(self, paper_instance):
        payload = instance_to_dict(paper_instance)
        payload["queries"][0]["demanded"] = [999]  # unknown dataset
        with pytest.raises(ValidationError):
            instance_from_dict(payload)


class TestSolutionRoundTrip:
    def test_preserves_solution(self, paper_instance, tmp_path):
        solution = make_algorithm("appro-g").solve(paper_instance)
        path = tmp_path / "solution.json"
        save_solution(solution, path)
        clone = load_solution(path)
        assert clone.admitted == solution.admitted
        assert dict(clone.replicas) == dict(solution.replicas)
        assert set(clone.assignments) == set(solution.assignments)
        verify_solution(paper_instance, clone)
        assert evaluate_solution(
            paper_instance, clone
        ).admitted_volume_gb == pytest.approx(
            evaluate_solution(paper_instance, solution).admitted_volume_gb
        )

    def test_extras_preserved(self, paper_instance):
        solution = make_algorithm("appro-g").solve(paper_instance)
        clone = solution_from_dict(solution_to_dict(solution))
        assert dict(clone.extras) == dict(solution.extras)


class TestTraceRoundTrip:
    def test_npz_round_trip(self, tmp_path):
        trace = generate_usage_trace(
            TraceConfig(num_users=50, num_apps=10, days=5), spawn_rng(0, "t")
        )
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        clone = load_trace(path)
        assert np.array_equal(clone.user, trace.user)
        assert np.array_equal(clone.app, trace.app)
        assert np.array_equal(clone.timestamp_s, trace.timestamp_s)
        assert clone.total_bytes == trace.total_bytes

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, format=np.array("other"), user=np.zeros(1))
        with pytest.raises(ValidationError):
            load_trace(path)
