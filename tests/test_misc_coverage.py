"""Coverage for small contracts not exercised elsewhere."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.sim.engine import Event
from repro.sim.events import ExecutionReport, QueryOutcome
from repro.topology.nodes import NodeKind
from repro.util.validation import ValidationError


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.repeats == 15  # the paper's averaging
        assert config.topology.core_size == 32

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentConfig(repeats=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExperimentConfig().repeats = 3


class TestEventOrdering:
    def test_time_then_sequence(self):
        a = Event(1.0, 0, lambda: None)
        b = Event(1.0, 1, lambda: None)
        c = Event(0.5, 2, lambda: None)
        assert sorted([b, a, c]) == [c, a, b]

    def test_action_not_compared(self):
        # Identical (time, seq) would be a scheduler bug, but ordering must
        # never touch the callback.
        a = Event(1.0, 0, lambda: 1)
        b = Event(2.0, 1, lambda: 2)
        assert a < b


class TestOutcomeRecords:
    def test_met_deadline_boundary(self):
        on_time = QueryOutcome(0, 0.0, 1.0, 1.0)
        late = QueryOutcome(0, 0.0, 1.0 + 1e-6, 1.0)
        assert on_time.met_deadline
        assert not late.met_deadline

    def test_report_aggregates(self):
        outcomes = (
            QueryOutcome(0, 0.0, 0.5, 1.0),
            QueryOutcome(1, 0.0, 1.5, 1.0),
        )
        report = ExecutionReport(outcomes=outcomes, makespan_s=2.0, events=10)
        assert report.num_executed == 2
        assert report.deadline_violations == 1
        assert report.mean_response_s == pytest.approx(1.0)
        assert report.max_response_s == pytest.approx(1.5)


class TestTopologyKinds:
    def test_of_kind_partitions_nodes(self, paper_topology):
        total = sum(
            len(paper_topology.of_kind(kind)) for kind in NodeKind
        )
        assert total == paper_topology.num_nodes

    def test_proc_delay_zero_for_switches(self, paper_topology):
        for v in paper_topology.switches:
            assert paper_topology.proc_delay(v) == 0.0

    def test_link_delay_unknown_edge_raises(self, paper_topology):
        bs = paper_topology.base_stations
        with pytest.raises(KeyError):
            # Two base stations are never directly linked.
            paper_topology.link_delay(bs[0], bs[1])


class TestPaperDefaultsComposition:
    def test_sweep_helpers_compose(self):
        from repro.workload.params import PaperDefaults

        params = (
            PaperDefaults()
            .with_max_replicas(5)
            .with_max_datasets_per_query(4)
            .with_num_queries(30)
        )
        assert params.max_replicas == 5
        assert params.datasets_per_query == (1, 4)
        assert params.num_queries == (30, 30)
        # Untouched fields keep the paper's values.
        assert params.dataset_volume_gb == (1.0, 6.0)
