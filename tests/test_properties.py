"""Property-based tests (hypothesis) for the DESIGN.md §6 invariants.

Instances are drawn from a broad strategy over topology shapes, workload
parameters and replica bounds; every invariant must hold for every
algorithm on every drawn instance.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.node import ComputeNode
from repro.cluster.replicas import ReplicaStore
from repro.cluster.state import ClusterState
from repro.core import (
    evaluate_solution,
    make_algorithm,
    solve_lp_relaxation,
    verify_solution,
)
from repro.core.types import Dataset
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.util.rng import spawn_rng
from repro.workload.params import PaperDefaults

GENERAL_ALGOS = ("appro-g", "greedy-g", "graph-g", "popularity-g")

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def instances(draw):
    """Random problem instances across topology and workload space."""
    topology = TwoTierConfig(
        num_data_centers=draw(st.integers(1, 4)),
        num_cloudlets=draw(st.integers(3, 12)),
        num_switches=draw(st.integers(1, 3)),
        num_base_stations=1,
        link_prob=draw(st.floats(0.15, 0.6)),
    )
    params = PaperDefaults(
        num_datasets=(3, 8),
        num_queries=(5, 25),
        datasets_per_query=(1, draw(st.integers(1, 4))),
        max_replicas=draw(st.integers(1, 5)),
        deadline_s_per_gb=(
            draw(st.floats(0.02, 0.08)),
            draw(st.floats(0.2, 0.6)),
        ),
    )
    seed = draw(st.integers(0, 10_000))
    return make_instance(topology, params, seed, 0)


class TestSolutionInvariants:
    @SLOW
    @given(instance=instances(), algo=st.sampled_from(GENERAL_ALGOS))
    def test_every_constraint_holds(self, instance, algo):
        """Invariants 1–4: deadlines, capacity, K bound, coverage."""
        solution = make_algorithm(algo).solve(instance)
        verify_solution(instance, solution)

    @SLOW
    @given(instance=instances(), algo=st.sampled_from(GENERAL_ALGOS))
    def test_metrics_well_formed(self, instance, algo):
        """Invariant 4: objective bounded by total demand; throughput in [0,1]."""
        solution = make_algorithm(algo).solve(instance)
        metrics = evaluate_solution(instance, solution)
        assert 0.0 <= metrics.throughput <= 1.0
        assert 0.0 <= metrics.admitted_volume_gb <= (
            instance.total_demanded_volume() + 1e-9
        )
        assert 0.0 <= metrics.mean_utilization <= 1.0 + 1e-9

    @SLOW
    @given(instance=instances(), algo=st.sampled_from(GENERAL_ALGOS))
    def test_determinism(self, instance, algo):
        """Invariant 6: same instance ⇒ identical solution."""
        s1 = make_algorithm(algo).solve(instance)
        s2 = make_algorithm(algo).solve(instance)
        assert s1.admitted == s2.admitted
        assert dict(s1.replicas) == dict(s2.replicas)

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=instances())
    def test_weak_duality(self, instance):
        """Invariant 5: every algorithm's objective ≤ LP relaxation optimum."""
        lp = solve_lp_relaxation(instance)
        for algo in GENERAL_ALGOS:
            solution = make_algorithm(algo).solve(instance)
            primal = evaluate_solution(instance, solution).admitted_volume_gb
            assert primal <= lp.objective + 1e-6


class TestClusterStateProperties:
    @SLOW
    @given(instance=instances(), data=st.data())
    def test_rollback_is_exact(self, instance, data):
        """Invariant 7: an aborted transaction leaves no trace."""
        state = ClusterState(instance)
        before_nodes = {v: n.snapshot() for v, n in state.nodes.items()}
        before_replicas = state.replicas.snapshot()
        q_idx = data.draw(st.integers(0, instance.num_queries - 1))
        query = instance.query(q_idx)
        with state.transaction():
            for d_id in query.demanded:
                dataset = instance.dataset(d_id)
                for v in instance.placement_nodes:
                    if state.can_serve(query, dataset, v):
                        state.serve(query, dataset, v)
                        break
            # no commit → rollback
        assert {v: n.snapshot() for v, n in state.nodes.items()} == before_nodes
        assert state.replicas.snapshot() == before_replicas

    @given(
        capacity=st.floats(0.5, 1000.0),
        amounts=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=30),
    )
    def test_node_capacity_never_exceeded(self, capacity, amounts):
        """Invariant 2: the ledger refuses over-allocation, always."""
        node = ComputeNode(0, capacity)
        for i, amount in enumerate(amounts):
            if node.can_fit(amount):
                node.allocate(i, amount)
        assert node.allocated_ghz <= capacity * (1 + 1e-9)

    @given(
        amounts=st.lists(
            st.tuples(st.integers(0, 9), st.floats(0.1, 5.0)),
            min_size=1,
            max_size=40,
        )
    )
    def test_allocate_release_round_trip(self, amounts):
        """Releasing everything restores a pristine ledger."""
        node = ComputeNode(0, 1e9)
        live = {}
        for i, (_, amount) in enumerate(amounts):
            node.allocate(i, amount)
            live[i] = amount
        for tag in list(live):
            assert node.release(tag) == live.pop(tag)
        assert node.allocated_ghz == pytest.approx(0.0, abs=1e-6)

    @given(
        k=st.integers(1, 6),
        placements=st.lists(st.integers(0, 15), min_size=0, max_size=40),
    )
    def test_replica_store_never_exceeds_k(self, k, placements):
        """Invariant 3: ≤ K copies no matter the operation sequence."""
        datasets = {0: Dataset(dataset_id=0, volume_gb=1.0, origin_node=99)}
        store = ReplicaStore(datasets, max_replicas=k)
        for node in placements:
            if store.can_place(0, node):
                store.place(0, node)
        assert store.count(0) <= k
        assert store.has(0, 99)  # origin never lost


class TestPartialVsAllOrNothing:
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=instances())
    def test_partial_mode_is_sound(self, instance):
        """Partial-admission solutions satisfy every constraint, and each
        admitted query serves a subset of its demanded datasets with at
        least one pair.  (Volume/count dominance over all-or-nothing does
        NOT hold per instance — kept partial pairs can crowd out later
        full admissions — so the admission-semantics ablation compares the
        two in the mean instead.)"""
        from repro.core import ApproG

        part_sol = ApproG(partial_admission=True).solve(instance)
        verify_solution(instance, part_sol, all_or_nothing=False)
        for q_id in part_sol.admitted:
            served = {d for (qq, d) in part_sol.assignments if qq == q_id}
            assert served
            assert served <= set(instance.query(q_id).demanded)
