"""Extended property tests: serialisation, topology generators, the referee.

Complements ``test_properties.py`` with properties over the persistence
layer, random topology configurations, and adversarial mutations of valid
solutions (the invariant checker must catch every corruption).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import InvariantViolation, make_algorithm, verify_solution
from repro.util.validation import ValidationError
from repro.core.types import Assignment, PlacementSolution
from repro.experiments.runner import make_instance
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    solution_from_dict,
    solution_to_dict,
)
from repro.topology.transit_stub import TransitStubConfig, generate_transit_stub
from repro.topology.twotier import TwoTierConfig, generate_two_tier
from repro.workload.params import PaperDefaults

RELAXED = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def small_instances(draw):
    topology = TwoTierConfig(
        num_data_centers=draw(st.integers(1, 3)),
        num_cloudlets=draw(st.integers(2, 8)),
        num_switches=1,
        num_base_stations=1,
    )
    params = PaperDefaults(
        num_datasets=(2, 6),
        num_queries=(3, 15),
        datasets_per_query=(1, 3),
        max_replicas=draw(st.integers(1, 4)),
    )
    return make_instance(topology, params, draw(st.integers(0, 5000)), 0)


class TestSerializationProperties:
    @RELAXED
    @given(instance=small_instances())
    def test_instance_round_trip_preserves_solutions(self, instance):
        """Solving a JSON round-tripped instance gives the identical answer."""
        clone = instance_from_dict(instance_to_dict(instance))
        s1 = make_algorithm("appro-g").solve(instance)
        s2 = make_algorithm("appro-g").solve(clone)
        assert s1.admitted == s2.admitted
        assert dict(s1.replicas) == dict(s2.replicas)

    @RELAXED
    @given(instance=small_instances())
    def test_solution_round_trip_still_verifies(self, instance):
        solution = make_algorithm("appro-g").solve(instance)
        clone = solution_from_dict(solution_to_dict(solution))
        verify_solution(instance, clone)
        assert clone.admitted == solution.admitted


class TestTopologyGeneratorProperties:
    @RELAXED
    @given(
        n_dc=st.integers(1, 5),
        n_cl=st.integers(1, 20),
        n_sw=st.integers(1, 4),
        p=st.floats(0.05, 0.9),
        seed=st.integers(0, 10_000),
    )
    def test_two_tier_always_connected_and_valid(self, n_dc, n_cl, n_sw, p, seed):
        topology = generate_two_tier(
            TwoTierConfig(
                num_data_centers=n_dc,
                num_cloudlets=n_cl,
                num_switches=n_sw,
                num_base_stations=2,
                link_prob=p,
            ),
            seed=seed,
        )
        assert topology.is_connected()
        assert len(topology.placement_nodes) == n_dc + n_cl
        assert all(d > 0 for d in topology.link_delays.values())

    @RELAXED
    @given(
        n_transit=st.integers(1, 4),
        stubs=st.integers(1, 3),
        per_stub=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_transit_stub_always_connected(self, n_transit, stubs, per_stub, seed):
        topology = generate_transit_stub(
            TransitStubConfig(
                num_transit=n_transit,
                stubs_per_transit=stubs,
                cloudlets_per_stub=per_stub,
                num_data_centers=2,
            ),
            seed=seed,
        )
        assert topology.is_connected()


def _mutate_solution(solution: PlacementSolution, mutation: str, instance):
    """Apply one named corruption to a valid solution."""
    replicas = dict(solution.replicas)
    assignments = dict(solution.assignments)
    admitted = set(solution.admitted)
    rejected = set(solution.rejected)
    if mutation == "drop_origin":
        d_id = next(iter(replicas))
        origin = instance.dataset(d_id).origin_node
        others = [v for v in instance.placement_nodes if v != origin]
        replicas[d_id] = tuple(others[:1])
    elif mutation == "over_k":
        d_id = next(iter(replicas))
        replicas[d_id] = tuple(instance.placement_nodes)
    elif mutation == "inflate_latency":
        key, a = next(iter(assignments.items()))
        assignments[key] = dataclasses.replace(
            a, latency_s=instance.query(key[0]).deadline_s * 10 + 1.0
        )
    elif mutation == "blow_capacity":
        key, a = next(iter(assignments.items()))
        assignments[key] = dataclasses.replace(a, compute_ghz=1e9)
    elif mutation == "double_decide":
        moved = next(iter(admitted))
        rejected.add(moved)
        return PlacementSolution(
            algorithm=solution.algorithm,
            replicas=replicas,
            assignments=assignments,
            admitted=frozenset(admitted),
            rejected=frozenset(rejected),
        )
    return PlacementSolution(
        algorithm=solution.algorithm,
        replicas=replicas,
        assignments=assignments,
        admitted=frozenset(admitted),
        rejected=frozenset(rejected),
    )


class TestRefereeCatchesCorruption:
    """Mutation tests: every corruption of a valid solution must be caught."""

    @RELAXED
    @given(
        instance=small_instances(),
        mutation=st.sampled_from(
            ["drop_origin", "over_k", "inflate_latency", "blow_capacity", "double_decide"]
        ),
    )
    def test_verify_rejects_mutants(self, instance, mutation):
        solution = make_algorithm("appro-g").solve(instance)
        # Skip draws where the mutation cannot produce a corruption.
        if mutation in ("inflate_latency", "blow_capacity") and not (
            solution.assignments
        ):
            return
        if mutation == "double_decide" and not solution.admitted:
            return
        if mutation == "over_k" and (
            instance.num_placement_nodes <= instance.max_replicas
        ):
            return  # replicating everywhere would still respect K
        # Corruption is caught either at solution construction
        # (ValidationError) or by the referee (InvariantViolation).
        with pytest.raises((InvariantViolation, ValidationError)):
            mutant = _mutate_solution(solution, mutation, instance)
            verify_solution(instance, mutant)
