"""Tests for link-delay models."""

import numpy as np
import pytest

from repro.topology.delays import (
    DistanceLinkDelays,
    UniformLinkDelays,
    assign_link_delays,
    is_internet_link,
)
from repro.topology.nodes import NodeKind, NodeSpec


def _cl(node_id: int, x=0.0, y=0.0) -> NodeSpec:
    return NodeSpec(node_id, NodeKind.CLOUDLET, f"cl{node_id}", 8.0, 0.05, x, y)


def _dc(node_id: int, x=0.0, y=0.0) -> NodeSpec:
    return NodeSpec(node_id, NodeKind.DATA_CENTER, f"dc{node_id}", 300.0, 0.01, x, y)


def _sw(node_id: int, x=0.0, y=0.0) -> NodeSpec:
    return NodeSpec(node_id, NodeKind.SWITCH, f"sw{node_id}", x=x, y=y)


class TestIsInternetLink:
    def test_dc_links_cross_internet(self):
        assert is_internet_link(_dc(0), _sw(1))
        assert is_internet_link(_sw(0), _dc(1))
        assert is_internet_link(_dc(0), _dc(1))

    def test_wman_links_do_not(self):
        assert not is_internet_link(_cl(0), _sw(1))
        assert not is_internet_link(_cl(0), _cl(1))


class TestUniformLinkDelays:
    def test_ranges_respected(self):
        model = UniformLinkDelays()
        rng = np.random.default_rng(0)
        for _ in range(50):
            wman = model.link_delay(_cl(0), _sw(1), rng)
            assert model.wman_low <= wman <= model.wman_high
            internet = model.link_delay(_dc(0), _sw(1), rng)
            assert model.internet_low <= internet <= model.internet_high

    def test_internet_slower_than_wman(self):
        model = UniformLinkDelays()
        assert model.internet_low > model.wman_high

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            UniformLinkDelays(wman_low=0.1, wman_high=0.05)


class TestDistanceLinkDelays:
    def test_monotone_in_distance(self):
        model = DistanceLinkDelays()
        rng = np.random.default_rng(0)
        near = model.link_delay(_cl(0, 0, 0), _cl(1, 0.1, 0), rng)
        far = model.link_delay(_cl(0, 0, 0), _cl(1, 0.9, 0), rng)
        assert far > near

    def test_internet_penalty_applied(self):
        model = DistanceLinkDelays()
        rng = np.random.default_rng(0)
        wman = model.link_delay(_cl(0), _cl(1), rng)
        internet = model.link_delay(_dc(0), _cl(1), rng)
        assert internet == pytest.approx(wman + model.internet_penalty)


class TestAssignLinkDelays:
    def test_keys_normalised(self):
        nodes = [_cl(0), _cl(1), _sw(2)]
        delays = assign_link_delays(
            nodes, [(1, 0), (2, 1)], UniformLinkDelays(), np.random.default_rng(0)
        )
        assert set(delays) == {(0, 1), (1, 2)}

    def test_one_delay_per_edge(self):
        nodes = [_cl(0), _cl(1)]
        delays = assign_link_delays(
            nodes, [(0, 1)], UniformLinkDelays(), np.random.default_rng(0)
        )
        assert len(delays) == 1
        assert delays[(0, 1)] > 0
