"""Tests for geographic delay modelling."""

import pytest

from repro.topology.geo import (
    GeoPoint,
    great_circle_km,
    propagation_delay_s,
    transfer_delay_s_per_gb,
)
from repro.util.validation import ValidationError

SF = GeoPoint(37.77, -122.42)
NYC = GeoPoint(40.71, -74.01)
SGP = GeoPoint(1.35, 103.82)


class TestGeoPoint:
    def test_valid(self):
        GeoPoint(0.0, 0.0)
        GeoPoint(-90.0, 180.0)

    def test_bad_latitude(self):
        with pytest.raises(ValidationError):
            GeoPoint(91.0, 0.0)

    def test_bad_longitude(self):
        with pytest.raises(ValidationError):
            GeoPoint(0.0, -181.0)


class TestGreatCircle:
    def test_known_distance_sf_nyc(self):
        # ~4130 km
        assert 4000 < great_circle_km(SF, NYC) < 4250

    def test_zero_distance(self):
        assert great_circle_km(SF, SF) == pytest.approx(0.0)

    def test_symmetry(self):
        assert great_circle_km(SF, SGP) == pytest.approx(great_circle_km(SGP, SF))

    def test_triangle_inequality(self):
        assert great_circle_km(SF, SGP) <= (
            great_circle_km(SF, NYC) + great_circle_km(NYC, SGP) + 1e-9
        )


class TestDelays:
    def test_propagation_sane_sf_nyc(self):
        # One-way fibre delay across the US: tens of milliseconds.
        delay = propagation_delay_s(SF, NYC)
        assert 0.015 < delay < 0.06

    def test_transfer_delay_dominated_by_serialisation_nearby(self):
        near = transfer_delay_s_per_gb(SF, SF, bandwidth_gbps=1.0)
        assert near == pytest.approx(8.0, rel=0.01)

    def test_transfer_delay_grows_with_distance(self):
        assert transfer_delay_s_per_gb(SF, SGP) > transfer_delay_s_per_gb(SF, NYC)

    def test_bandwidth_scales_serialisation(self):
        slow = transfer_delay_s_per_gb(SF, NYC, bandwidth_gbps=1.0)
        fast = transfer_delay_s_per_gb(SF, NYC, bandwidth_gbps=10.0)
        assert fast < slow

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            transfer_delay_s_per_gb(SF, NYC, bandwidth_gbps=0.0)
