"""Tests for the node taxonomy."""

import pytest

from repro.topology.nodes import NodeKind, NodeSpec
from repro.util.validation import ValidationError


class TestNodeKind:
    def test_placement_roles(self):
        assert NodeKind.CLOUDLET.is_placement
        assert NodeKind.DATA_CENTER.is_placement
        assert not NodeKind.SWITCH.is_placement
        assert not NodeKind.BASE_STATION.is_placement

    def test_short_prefixes_unique(self):
        shorts = {kind.short for kind in NodeKind}
        assert shorts == {"bs", "sw", "cl", "dc"}


class TestNodeSpec:
    def test_valid_cloudlet(self):
        spec = NodeSpec(0, NodeKind.CLOUDLET, "cl0", 8.0, 0.05)
        assert spec.is_placement
        assert spec.capacity_ghz == 8.0

    def test_placement_requires_capacity(self):
        with pytest.raises(ValidationError):
            NodeSpec(0, NodeKind.CLOUDLET, "cl0", 0.0, 0.05)

    def test_placement_requires_proc_delay(self):
        with pytest.raises(ValidationError):
            NodeSpec(0, NodeKind.DATA_CENTER, "dc0", 100.0, 0.0)

    def test_switch_rejects_capacity(self):
        with pytest.raises(ValueError):
            NodeSpec(0, NodeKind.SWITCH, "sw0", capacity_ghz=5.0)

    def test_switch_ok_with_zero_capacity(self):
        spec = NodeSpec(3, NodeKind.SWITCH, "sw0")
        assert not spec.is_placement
        assert spec.capacity_ghz == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            NodeSpec(0, NodeKind.CLOUDLET, "cl0", -1.0, 0.05)

    def test_frozen(self):
        spec = NodeSpec(0, NodeKind.CLOUDLET, "cl0", 8.0, 0.05)
        with pytest.raises(AttributeError):
            spec.capacity_ghz = 16.0
