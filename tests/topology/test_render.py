"""Tests for topology text rendering."""

import pytest

from repro.topology.render import (
    render_adjacency,
    render_map,
    render_summary,
    render_topology,
)
from repro.topology.twotier import example_figure1


@pytest.fixture(scope="module")
def small():
    return example_figure1()


class TestSummary:
    def test_mentions_every_tier(self, small):
        text = render_summary(small)
        for tier in ("data_center", "cloudlet", "switch", "base_station"):
            assert tier in text

    def test_counts_correct(self, small):
        text = render_summary(small)
        assert f"cloudlet     : {len(small.cloudlets):3d}" in text

    def test_delay_range(self, small):
        text = render_summary(small)
        assert "dt(e)" in text


class TestMap:
    def test_dimensions(self, small):
        text = render_map(small, width=30, height=10)
        lines = text.splitlines()
        assert lines[0] == "+" + "-" * 30 + "+"
        body = [l for l in lines if l.startswith("|")]
        assert len(body) == 10
        assert all(len(l) == 32 for l in body)

    def test_all_glyphs_present(self, small):
        text = render_map(small)
        for glyph in ("D", "c", "s", "b"):
            assert glyph in text

    def test_glyph_counts_bounded(self, small):
        text = render_map(small, width=80, height=30)
        grid = "".join(l for l in text.splitlines() if l.startswith("|"))
        assert grid.count("D") <= len(small.data_centers)
        assert grid.count("c") <= len(small.cloudlets)


class TestAdjacency:
    def test_lists_every_node(self, small):
        text = render_adjacency(small)
        for spec in small.nodes:
            assert spec.name in text

    def test_omitted_for_large(self, paper_topology):
        text = render_adjacency(paper_topology, max_nodes=10)
        assert text.startswith("(adjacency omitted")

    def test_neighbours_symmetric(self, small):
        text = render_adjacency(small)
        # dc0's row lists some neighbour; that neighbour's row lists dc0.
        lines = {l.split(" — ")[0].strip(): l for l in text.splitlines()[1:]}
        first = lines["dc0"].split(" — ")[1].split(", ")[0]
        assert "dc0" in lines[first]


class TestFullReport:
    def test_combined_sections(self, small):
        text = render_topology(small)
        assert "topology summary" in text
        assert "adjacency" in text
        assert "legend" not in text  # legend line is unlabelled
        assert "D=data center" in text

    def test_large_topology_skips_adjacency(self):
        from repro.topology.twotier import TwoTierConfig, generate_two_tier

        big = generate_two_tier(TwoTierConfig().scaled_to(60), seed=0)
        text = render_topology(big)
        assert "adjacency" not in text
