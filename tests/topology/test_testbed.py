"""Tests for the emulated DigitalOcean testbed topology."""

import pytest

from repro.topology.nodes import NodeKind
from repro.topology.testbed import REGIONS, digitalocean_testbed
from repro.topology.testbed import TestbedConfig as TbConfig  # avoid Test* collection
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def testbed():
    return digitalocean_testbed(seed=0)


class TestShape:
    def test_paper_fleet(self, testbed):
        # §4.3: 4 DC VMs + 16 cloudlet VMs + 2 switches.
        assert len(testbed.data_centers) == 4
        assert len(testbed.cloudlets) == 16
        assert len(testbed.switches) == 2

    def test_four_regions(self, testbed):
        regions = {testbed.spec(v).region for v in testbed.placement_nodes}
        assert regions == set(REGIONS)

    def test_connected(self, testbed):
        assert testbed.is_connected()

    def test_every_vm_uplinked_to_both_switches(self, testbed):
        for v in testbed.placement_nodes:
            neighbours = set(testbed.graph.neighbors(v))
            assert set(testbed.switches) <= neighbours


class TestDelays:
    def test_singapore_farther_than_toronto(self, testbed):
        """The lab is in Dalian: Singapore uplink < Toronto uplink? No —
        check relative geography honestly: Singapore is much closer to
        Dalian than Toronto is, so its uplink delay must be smaller."""
        sw = testbed.switches[0]
        sgp = next(
            v for v in testbed.cloudlets if testbed.spec(v).region == "sgp"
        )
        tor = next(
            v for v in testbed.cloudlets if testbed.spec(v).region == "tor"
        )
        assert testbed.link_delay(sgp, sw) < testbed.link_delay(tor, sw)

    def test_dc_uplink_slower_than_cloudlet_same_region(self, testbed):
        sw = testbed.switches[0]
        for region in REGIONS:
            dc = next(
                v for v in testbed.data_centers if testbed.spec(v).region == region
            )
            cl = next(
                v for v in testbed.cloudlets if testbed.spec(v).region == region
            )
            assert testbed.link_delay(dc, sw) > testbed.link_delay(cl, sw)


class TestConfig:
    def test_custom_fleet(self):
        topo = digitalocean_testbed(
            TbConfig(cloudlets_per_region=2, data_centers_per_region=2)
        )
        assert len(topo.cloudlets) == 8
        assert len(topo.data_centers) == 8

    def test_capacity_ranges(self, testbed):
        config = TbConfig()
        for v in testbed.data_centers:
            low, high = config.dc_capacity
            assert low <= testbed.capacity(v) <= high
        for v in testbed.cloudlets:
            low, high = config.cl_capacity
            assert low <= testbed.capacity(v) <= high

    def test_inverted_range_rejected(self):
        with pytest.raises(ValidationError):
            TbConfig(dc_capacity=(100.0, 50.0))

    def test_deterministic(self):
        t1 = digitalocean_testbed(seed=4)
        t2 = digitalocean_testbed(seed=4)
        assert t1.link_delays == t2.link_delays
