"""Tests for the GT-ITM transit-stub generator."""

import pytest

from repro.topology.nodes import NodeKind
from repro.topology.transit_stub import TransitStubConfig, generate_transit_stub
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def ts():
    return generate_transit_stub(seed=3)


class TestStructure:
    def test_node_counts(self, ts):
        config = TransitStubConfig()
        assert len(ts.switches) == config.num_transit
        assert len(ts.cloudlets) == config.num_cloudlets
        assert len(ts.data_centers) == config.num_data_centers

    def test_connected(self, ts):
        assert ts.is_connected()

    def test_data_centers_attach_to_transit_only(self, ts):
        transit = set(ts.switches)
        for dc in ts.data_centers:
            neighbours = set(ts.graph.neighbors(dc))
            assert neighbours <= transit
            assert len(neighbours) == 1  # single gateway link

    def test_stub_uplink_structure(self, ts):
        """Each stub domain reaches the core via exactly one uplink, so
        removing all transit nodes shatters the cloudlets into stubs."""
        config = TransitStubConfig()
        import networkx as nx

        stripped = ts.graph.subgraph(ts.cloudlets)
        components = list(nx.connected_components(stripped))
        assert len(components) == config.num_transit * config.stubs_per_transit
        assert all(len(c) == config.cloudlets_per_stub for c in components)

    def test_deterministic(self):
        t1 = generate_transit_stub(seed=9)
        t2 = generate_transit_stub(seed=9)
        assert t1.link_delays == t2.link_delays

    def test_custom_shape(self):
        config = TransitStubConfig(
            num_transit=2, stubs_per_transit=3, cloudlets_per_stub=2,
            num_data_centers=1,
        )
        topo = generate_transit_stub(config, seed=0)
        assert len(topo.cloudlets) == 12
        assert topo.is_connected()

    def test_inverted_range_rejected(self):
        with pytest.raises(ValidationError):
            TransitStubConfig(cl_capacity=(16.0, 8.0))


class TestUsableAsSubstrate:
    def test_placement_algorithms_run(self, ts):
        from repro.core import make_algorithm, verify_solution
        from repro.util.rng import spawn_rng
        from repro.workload.queries import generate_workload

        instance = generate_workload(ts, spawn_rng(1, "wl"))
        for name in ("appro-g", "greedy-g"):
            solution = make_algorithm(name).solve(instance)
            verify_solution(instance, solution)
