"""Tests for the two-tier topology builder."""

import pytest

from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.twotier import (
    EdgeCloudTopology,
    TwoTierConfig,
    example_figure1,
    generate_two_tier,
)
from repro.util.validation import ValidationError


class TestTwoTierConfig:
    def test_paper_defaults(self):
        config = TwoTierConfig()
        assert config.num_data_centers == 6
        assert config.num_cloudlets == 24
        assert config.num_switches == 2
        assert config.link_prob == 0.2
        assert config.dc_capacity == (200.0, 700.0)
        assert config.cl_capacity == (8.0, 16.0)

    def test_core_size(self):
        assert TwoTierConfig().core_size == 32

    def test_scaled_to_preserves_ratio(self):
        scaled = TwoTierConfig().scaled_to(160)
        assert scaled.core_size == 160
        # 6:24:2 ratio → 30 DCs, 10 switches at core 160.
        assert scaled.num_data_centers == 30
        assert scaled.num_switches == 10

    def test_scaled_to_small(self):
        scaled = TwoTierConfig().scaled_to(4)
        assert scaled.num_data_centers >= 1
        assert scaled.num_cloudlets >= 1
        assert scaled.num_switches >= 1

    def test_inverted_range_rejected(self):
        with pytest.raises(ValidationError):
            TwoTierConfig(dc_capacity=(700.0, 200.0))


class TestGenerateTwoTier:
    def test_node_counts(self, paper_topology):
        assert len(paper_topology.data_centers) == 6
        assert len(paper_topology.cloudlets) == 24
        assert len(paper_topology.switches) == 2
        assert len(paper_topology.base_stations) == 8

    def test_connected(self, paper_topology):
        assert paper_topology.is_connected()

    def test_placement_nodes(self, paper_topology):
        assert set(paper_topology.placement_nodes) == set(
            paper_topology.data_centers
        ) | set(paper_topology.cloudlets)

    def test_capacities_in_paper_ranges(self, paper_topology):
        for v in paper_topology.data_centers:
            assert 200.0 <= paper_topology.capacity(v) <= 700.0
        for v in paper_topology.cloudlets:
            assert 8.0 <= paper_topology.capacity(v) <= 16.0

    def test_deterministic(self):
        t1 = generate_two_tier(seed=5)
        t2 = generate_two_tier(seed=5)
        assert t1.link_delays == t2.link_delays
        assert [s.capacity_ghz for s in t1.nodes] == [
            s.capacity_ghz for s in t2.nodes
        ]

    def test_seed_changes_topology(self):
        t1 = generate_two_tier(seed=5)
        t2 = generate_two_tier(seed=6)
        assert t1.link_delays != t2.link_delays

    def test_base_stations_attached(self, paper_topology):
        for bs in paper_topology.base_stations:
            assert paper_topology.graph.degree[bs] >= 1

    def test_capacity_arrays_match(self, paper_topology):
        caps = paper_topology.capacities_array()
        for i, v in enumerate(paper_topology.placement_nodes):
            assert caps[i] == paper_topology.capacity(v)

    def test_positive_link_delays(self, paper_topology):
        assert all(d > 0 for d in paper_topology.link_delays.values())


class TestEdgeCloudTopologyValidation:
    def _spec(self, node_id: int, kind=NodeKind.CLOUDLET) -> NodeSpec:
        cap = 8.0 if kind.is_placement else 0.0
        proc = 0.05 if kind.is_placement else 0.0
        return NodeSpec(node_id, kind, f"n{node_id}", cap, proc)

    def test_dense_ids_enforced(self):
        specs = [self._spec(0), self._spec(2)]
        with pytest.raises(ValidationError):
            EdgeCloudTopology(specs, {})

    def test_self_loop_rejected(self):
        specs = [self._spec(0), self._spec(1)]
        with pytest.raises(ValidationError):
            EdgeCloudTopology(specs, {(0, 0): 0.1})

    def test_unknown_edge_endpoint_rejected(self):
        specs = [self._spec(0), self._spec(1)]
        with pytest.raises(ValidationError):
            EdgeCloudTopology(specs, {(0, 5): 0.1})

    def test_non_positive_delay_rejected(self):
        specs = [self._spec(0), self._spec(1)]
        with pytest.raises(ValidationError):
            EdgeCloudTopology(specs, {(0, 1): 0.0})

    def test_link_delay_symmetric_lookup(self):
        specs = [self._spec(0), self._spec(1)]
        topo = EdgeCloudTopology(specs, {(1, 0): 0.3})
        assert topo.link_delay(0, 1) == 0.3
        assert topo.link_delay(1, 0) == 0.3


class TestExampleFigure1:
    def test_shape(self):
        topo = example_figure1()
        assert len(topo.data_centers) == 2
        assert len(topo.cloudlets) == 4
        assert len(topo.switches) == 3
        assert topo.is_connected()
