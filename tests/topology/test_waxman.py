"""Tests for the GT-ITM-style random graph generators."""

import numpy as np
import pytest

from repro.topology.waxman import (
    connect_components,
    gnp_connected_graph,
    waxman_graph,
)
from repro.util.validation import ValidationError


def _is_connected(n: int, edges: list[tuple[int, int]]) -> bool:
    adjacency: dict[int, list[int]] = {i: [] for i in range(n)}
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    seen = {0}
    stack = [0]
    while stack:
        for nxt in adjacency[stack.pop()]:
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return len(seen) == n


class TestGnp:
    def test_connected_even_with_zero_prob(self):
        rng = np.random.default_rng(0)
        positions, edges = gnp_connected_graph(10, 1e-9, rng)
        assert _is_connected(10, edges)
        assert positions.shape == (10, 2)

    @pytest.mark.parametrize("seed", range(5))
    def test_connected_at_paper_probability(self, seed):
        rng = np.random.default_rng(seed)
        _, edges = gnp_connected_graph(32, 0.2, rng)
        assert _is_connected(32, edges)

    def test_edge_density_tracks_probability(self):
        rng = np.random.default_rng(1)
        n = 60
        _, edges = gnp_connected_graph(n, 0.2, rng)
        expected = 0.2 * n * (n - 1) / 2
        assert 0.6 * expected <= len(edges) <= 1.4 * expected

    def test_deterministic_given_rng_seed(self):
        e1 = gnp_connected_graph(20, 0.3, np.random.default_rng(9))[1]
        e2 = gnp_connected_graph(20, 0.3, np.random.default_rng(9))[1]
        assert e1 == e2

    def test_rejects_bad_probability(self):
        with pytest.raises(ValidationError):
            gnp_connected_graph(5, 1.5, np.random.default_rng(0))

    def test_rejects_bad_positions_shape(self):
        with pytest.raises(ValueError):
            gnp_connected_graph(
                5, 0.5, np.random.default_rng(0), positions=np.zeros((4, 2))
            )

    def test_single_node(self):
        _, edges = gnp_connected_graph(1, 0.5, np.random.default_rng(0))
        assert edges == []

    def test_edges_normalised(self):
        _, edges = gnp_connected_graph(15, 0.4, np.random.default_rng(3))
        for u, v in edges:
            assert u != v


class TestWaxman:
    @pytest.mark.parametrize("seed", range(3))
    def test_connected(self, seed):
        rng = np.random.default_rng(seed)
        _, edges = waxman_graph(25, rng)
        assert _is_connected(25, edges)

    def test_distance_decay(self):
        """Waxman links short pairs more often than long pairs."""
        rng = np.random.default_rng(4)
        positions = rng.random((80, 2))
        _, edges = waxman_graph(
            80, np.random.default_rng(5), alpha=0.15, beta=0.6, positions=positions
        )
        linked = [
            float(np.hypot(*(positions[u] - positions[v]))) for u, v in edges
        ]
        iu, ju = np.triu_indices(80, k=1)
        all_pairs = np.hypot(
            positions[iu, 0] - positions[ju, 0], positions[iu, 1] - positions[ju, 1]
        )
        assert np.mean(linked) < np.mean(all_pairs)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValidationError):
            waxman_graph(5, np.random.default_rng(0), alpha=0.0)


class TestConnectComponents:
    def test_bridges_two_islands(self):
        positions = np.array([[0.0, 0.0], [0.1, 0.0], [1.0, 1.0], [1.1, 1.0]])
        edges = [(0, 1), (2, 3)]
        added = connect_components(positions, edges, np.random.default_rng(0))
        assert len(added) == 1
        u, v = added[0]
        # The closest cross pair is (1, 2).
        assert {u, v} == {1, 2}

    def test_no_op_when_connected(self):
        positions = np.random.default_rng(0).random((4, 2))
        edges = [(0, 1), (1, 2), (2, 3)]
        assert connect_components(positions, edges, np.random.default_rng(0)) == []
