"""Tests for deterministic RNG derivation."""

import numpy as np
import pytest

from repro.util.rng import RngStream, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_label_separates_streams(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_separates_streams(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_negative_seed_allowed(self):
        assert derive_seed(-5, "x") != derive_seed(5, "x")

    def test_range(self):
        for seed in (0, 1, 2**40, -1):
            value = derive_seed(seed, "label")
            assert 0 <= value < 2**63

    def test_stable_across_processes(self):
        # Hard-coded expectation: guards against hash() salting sneaking in.
        assert derive_seed(0, "root") == derive_seed(0, "root")
        a = derive_seed(123, "topology")
        b = derive_seed(123, "topology")
        assert a == b


class TestSpawnRng:
    def test_same_label_same_draws(self):
        g1 = spawn_rng(7, "x")
        g2 = spawn_rng(7, "x")
        assert np.array_equal(g1.random(10), g2.random(10))

    def test_different_labels_different_draws(self):
        g1 = spawn_rng(7, "x")
        g2 = spawn_rng(7, "y")
        assert not np.array_equal(g1.random(10), g2.random(10))


class TestRngStream:
    def test_child_is_cached(self):
        root = RngStream(1)
        assert root.child("a") is root.child("a")

    def test_child_path_nesting(self):
        root = RngStream(1)
        grandchild = root.child("a").child("b")
        assert grandchild.path == "a/b"

    def test_order_independence(self):
        r1 = RngStream(5)
        r1.child("first")
        stream_a = r1.child("target").generator().random()
        r2 = RngStream(5)
        stream_b = r2.child("target").generator().random()
        assert stream_a == stream_b

    def test_slash_in_label_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).child("a/b")

    def test_derived_seed_matches_generator(self):
        stream = RngStream(9).child("z")
        via_seed = np.random.default_rng(stream.derived_seed()).random()
        via_stream = stream.generator().random()
        assert via_seed == via_stream
