"""Tests for unit helpers."""

from repro.util.units import (
    MS,
    format_delay,
    format_volume,
    gb,
    ghz,
    ms_to_s,
    s_to_ms,
)


class TestConversions:
    def test_identity_helpers(self):
        assert gb(3.5) == 3.5
        assert ghz(2.0) == 2.0

    def test_ms_round_trip(self):
        assert ms_to_s(1500.0) == 1.5
        assert s_to_ms(1.5) == 1500.0
        assert s_to_ms(ms_to_s(42.0)) == 42.0

    def test_ms_constant(self):
        assert MS == 1e-3


class TestFormatting:
    def test_volume_gb(self):
        assert format_volume(3.0) == "3.00 GB"

    def test_volume_tb(self):
        assert format_volume(2048.0) == "2.00 TB"

    def test_volume_boundary(self):
        assert format_volume(1024.0) == "1.00 TB"
        assert format_volume(1023.9).endswith("GB")

    def test_delay_ms(self):
        assert format_delay(0.0425) == "42.5 ms"

    def test_delay_s(self):
        assert format_delay(3.5) == "3.50 s"

    def test_delay_boundary(self):
        assert format_delay(0.9999).endswith("ms")
        assert format_delay(1.0).endswith("s")
