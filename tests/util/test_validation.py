"""Tests for argument validators."""

import pytest

from repro.util.validation import (
    ValidationError,
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError, match="x"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative("x", -1e-9)


class TestCheckFraction:
    def test_accepts_one(self):
        assert check_fraction("a", 1.0) == 1.0

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValidationError):
            check_fraction("a", 0.0)

    def test_inclusive_low_accepts_zero(self):
        assert check_fraction("a", 0.0, inclusive_low=True) == 0.0

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_fraction("a", 1.0001)

    def test_error_mentions_bracket(self):
        with pytest.raises(ValidationError, match=r"\(0, 1\]"):
            check_fraction("a", 2.0)


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range("r", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("r", 2.0, 1.0, 2.0) == 2.0

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_in_range("r", 2.1, 1.0, 2.0)


class TestCheckType:
    def test_accepts_instance(self):
        assert check_type("t", 3, int) == 3

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="int"):
            check_type("t", "3", int)
