"""Tests for the executable analytics queries."""

import numpy as np
import pytest

from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.analytics import (
    AnalyticsQueryKind,
    app_usage_pattern,
    execute_analytics,
    top_k_apps,
    trace_queries,
    usage_by_hour,
)
from repro.workload.trace import TraceConfig, generate_usage_trace, split_trace_by_time


@pytest.fixture(scope="module")
def trace():
    return generate_usage_trace(
        TraceConfig(num_users=200, num_apps=30, days=20), spawn_rng(0, "t")
    )


@pytest.fixture(scope="module")
def segments(trace, paper_topology):
    _, segs = split_trace_by_time(trace, 8, paper_topology, spawn_rng(1, "s"))
    return segs


class TestTopKApps:
    def test_returns_k_apps(self, trace, segments):
        top = top_k_apps(trace, segments, [0, 1, 2], k=5)
        assert len(top) == 5
        assert len(set(top.tolist())) == 5

    def test_rank_order(self, trace, segments):
        top = top_k_apps(trace, segments, list(range(8)), k=10)
        idx = np.concatenate([np.arange(*segments[w]) for w in range(8)])
        counts = np.bincount(trace.app[idx])
        top_counts = [counts[a] for a in top]
        assert top_counts == sorted(top_counts, reverse=True)

    def test_window_restriction_matters(self, trace, segments):
        all_windows = top_k_apps(trace, segments, list(range(8)), k=3)
        # Counting only one window must still return valid apps.
        one_window = top_k_apps(trace, segments, [0], k=3)
        assert len(one_window) == 3
        assert set(one_window.tolist()) <= set(range(30))
        assert len(all_windows) == 3

    def test_empty_windows_rejected(self, trace, segments):
        with pytest.raises(ValidationError):
            top_k_apps(trace, segments, [])


class TestUsageByHour:
    def test_length_24(self, trace, segments):
        hours = usage_by_hour(trace, segments, [0, 1])
        assert len(hours) == 24

    def test_total_matches_window_size(self, trace, segments):
        hours = usage_by_hour(trace, segments, [2])
        a, b = segments[2]
        assert hours.sum() == b - a

    def test_per_app_filter(self, trace, segments):
        app = int(trace.app[0])
        hours = usage_by_hour(trace, segments, list(range(8)), app=app)
        assert hours.sum() == int((trace.app == app).sum())


class TestAppUsagePattern:
    def test_daily_durations_positive(self, trace, segments):
        pattern = app_usage_pattern(trace, segments, list(range(8)), app=0)
        assert (pattern >= 0).all()
        assert pattern.sum() > 0

    def test_unused_app_empty(self, trace, segments):
        pattern = app_usage_pattern(trace, segments, [0], app=29_999)
        assert pattern.size == 0

    def test_total_duration_matches(self, trace, segments):
        app = 1
        pattern = app_usage_pattern(trace, segments, list(range(8)), app=app)
        expected = trace.duration_s[trace.app == app].sum()
        assert pattern.sum() == pytest.approx(expected)


class TestExecuteAnalytics:
    def test_dispatch_matches_direct_calls(self, trace, segments):
        windows = [0, 1, 2]
        assert np.array_equal(
            execute_analytics(AnalyticsQueryKind.TOP_K_APPS, trace, segments, windows),
            top_k_apps(trace, segments, windows),
        )
        assert np.array_equal(
            execute_analytics(
                AnalyticsQueryKind.USAGE_BY_HOUR, trace, segments, windows, app=2
            ),
            usage_by_hour(trace, segments, windows, app=2),
        )

    def test_pattern_requires_app(self, trace, segments):
        with pytest.raises(ValidationError):
            execute_analytics(
                AnalyticsQueryKind.APP_USAGE_PATTERN, trace, segments, [0]
            )


class TestTraceQueries:
    def test_contiguous_windows(self, paper_topology, trace, segments):
        datasets, _ = split_trace_by_time(
            trace, 8, paper_topology, spawn_rng(2, "s")
        )
        queries, kinds = trace_queries(
            paper_topology, datasets, spawn_rng(3, "q"), count=40
        )
        assert len(queries) == len(kinds) == 40
        for q in queries:
            span = list(q.demanded)
            assert span == list(range(span[0], span[0] + len(span)))

    def test_kinds_cover_all_families(self, paper_topology, trace):
        datasets, _ = split_trace_by_time(
            trace, 8, paper_topology, spawn_rng(4, "s")
        )
        _, kinds = trace_queries(
            paper_topology, datasets, spawn_rng(5, "q"), count=100
        )
        assert set(kinds) == set(AnalyticsQueryKind)
