"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.arrivals import diurnal_arrivals, poisson_arrivals


class TestPoissonArrivals:
    def test_count_and_order(self):
        times = poisson_arrivals(100, 0.5, spawn_rng(0, "a"))
        assert len(times) == 100
        assert np.all(np.diff(times) >= 0)
        assert times[0] > 0

    def test_mean_gap_approx(self):
        times = poisson_arrivals(5000, 0.5, spawn_rng(1, "a"))
        gaps = np.diff(times)
        assert 0.45 < gaps.mean() < 0.55

    def test_deterministic(self):
        t1 = poisson_arrivals(10, 1.0, spawn_rng(2, "a"))
        t2 = poisson_arrivals(10, 1.0, spawn_rng(2, "a"))
        assert np.array_equal(t1, t2)

    def test_bad_args(self):
        with pytest.raises(ValidationError):
            poisson_arrivals(0, 1.0, spawn_rng(0, "a"))
        with pytest.raises(ValidationError):
            poisson_arrivals(1, 0.0, spawn_rng(0, "a"))


class TestDiurnalArrivals:
    def test_count_order_and_span(self):
        span = 3 * 86_400.0
        times = diurnal_arrivals(500, span, spawn_rng(3, "a"))
        assert len(times) == 500
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0
        assert times[-1] < span

    def test_evening_peak(self):
        times = diurnal_arrivals(20_000, 7 * 86_400.0, spawn_rng(4, "a"))
        hours = ((times % 86_400.0) // 3600.0).astype(int)
        by_hour = np.bincount(hours, minlength=24)
        assert by_hour[21] > 2 * by_hour[3]

    def test_short_span_still_fills(self):
        times = diurnal_arrivals(50, 7200.0, spawn_rng(5, "a"))
        assert len(times) == 50
        assert times[-1] < 7200.0

    def test_deterministic(self):
        t1 = diurnal_arrivals(30, 86_400.0, spawn_rng(6, "a"))
        t2 = diurnal_arrivals(30, 86_400.0, spawn_rng(6, "a"))
        assert np.array_equal(t1, t2)
