"""Tests for dataset generation."""

import pytest

from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.datasets import generate_datasets
from repro.workload.params import PaperDefaults


class TestGenerateDatasets:
    def test_count_in_paper_range(self, paper_topology):
        for seed in range(10):
            datasets = generate_datasets(paper_topology, spawn_rng(seed, "d"))
            assert 5 <= len(datasets) <= 20

    def test_fixed_count(self, paper_topology):
        datasets = generate_datasets(
            paper_topology, spawn_rng(0, "d"), count=12
        )
        assert len(datasets) == 12

    def test_dense_ids(self, paper_topology):
        datasets = generate_datasets(paper_topology, spawn_rng(1, "d"), count=8)
        assert sorted(datasets) == list(range(8))
        for d_id, ds in datasets.items():
            assert ds.dataset_id == d_id

    def test_volumes_in_range(self, paper_topology):
        datasets = generate_datasets(paper_topology, spawn_rng(2, "d"), count=50)
        for ds in datasets.values():
            assert 1.0 <= ds.volume_gb <= 6.0

    def test_origins_are_placement_nodes(self, paper_topology):
        datasets = generate_datasets(paper_topology, spawn_rng(3, "d"), count=50)
        placement = set(paper_topology.placement_nodes)
        for ds in datasets.values():
            assert ds.origin_node in placement

    def test_origin_mix_biased_to_data_centers(self, paper_topology):
        datasets = generate_datasets(
            paper_topology, spawn_rng(4, "d"), count=400
        )
        dc = set(paper_topology.data_centers)
        dc_share = sum(1 for ds in datasets.values() if ds.origin_node in dc) / len(
            datasets
        )
        assert 0.55 <= dc_share <= 0.85  # around dc_origin_fraction = 0.7

    def test_all_cloudlet_origins_when_fraction_zero(self, paper_topology):
        params = PaperDefaults(dc_origin_fraction=0.0)
        datasets = generate_datasets(
            paper_topology, spawn_rng(5, "d"), params, count=30
        )
        cl = set(paper_topology.cloudlets)
        assert all(ds.origin_node in cl for ds in datasets.values())

    def test_deterministic(self, paper_topology):
        d1 = generate_datasets(paper_topology, spawn_rng(6, "d"), count=10)
        d2 = generate_datasets(paper_topology, spawn_rng(6, "d"), count=10)
        assert {k: (v.volume_gb, v.origin_node) for k, v in d1.items()} == {
            k: (v.volume_gb, v.origin_node) for k, v in d2.items()
        }

    def test_zero_count_rejected(self, paper_topology):
        with pytest.raises(ValidationError):
            generate_datasets(paper_topology, spawn_rng(7, "d"), count=0)
