"""Tests for the sliding-window demand forecaster."""

import numpy as np
import pytest

from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.forecast import (
    DemandForecaster,
    ForecastConfig,
    ewma_forecast,
    fit_zipf_exponent,
    region_labels,
    trace_window_counts,
    zipf_weight_forecast,
)
from repro.workload.trace import (
    TraceConfig,
    generate_usage_trace,
    zipf_weights,
)


class TestForecastConfig:
    def test_defaults_valid(self):
        cfg = ForecastConfig()
        assert cfg.estimator == "ewma"

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValidationError, match="alpha"):
            ForecastConfig(alpha=0.0)
        with pytest.raises(ValidationError, match="alpha"):
            ForecastConfig(alpha=1.5)

    def test_bad_estimator_rejected(self):
        with pytest.raises(ValidationError, match="estimator"):
            ForecastConfig(estimator="arima")

    def test_bad_bucket_rejected(self):
        with pytest.raises(ValidationError):
            ForecastConfig(bucket=0)
        with pytest.raises(ValidationError):
            ForecastConfig(num_buckets=0)


class TestEwmaForecast:
    def test_single_bucket_predicts_itself(self):
        b = np.array([[3.0, 1.0]])
        np.testing.assert_array_equal(ewma_forecast(b, 0.5), b[0])

    def test_alpha_one_tracks_newest(self):
        b = np.array([[9.0], [2.0], [5.0]])
        assert ewma_forecast(b, 1.0)[0] == 5.0

    def test_recursive_definition(self):
        b = np.array([4.0, 8.0, 2.0])
        expected = 0.25 * 2.0 + 0.75 * (0.25 * 8.0 + 0.75 * 4.0)
        assert ewma_forecast(b, 0.25) == pytest.approx(expected)

    def test_ramp_lags_but_rises(self):
        ramp = np.arange(1.0, 9.0)[:, None]
        level = ewma_forecast(ramp, 0.5)[0]
        assert ramp[-2, 0] < level < ramp[-1, 0]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ewma_forecast(np.empty((0, 3)), 0.5)


class TestFitZipfExponent:
    def test_recovers_generating_exponent(self):
        # Exact Zipf counts regress back to their exponent.
        counts = 1e6 * zipf_weights(50, 1.2)
        assert fit_zipf_exponent(counts) == pytest.approx(1.2, abs=1e-6)

    def test_order_invariant(self):
        counts = 1e5 * zipf_weights(20, 0.8)
        rng = spawn_rng(3, "shuffle")
        shuffled = rng.permutation(counts)
        assert fit_zipf_exponent(shuffled) == pytest.approx(
            fit_zipf_exponent(counts)
        )

    def test_degenerate_windows_return_default(self):
        assert fit_zipf_exponent(np.zeros(5), default=1.7) == 1.7
        assert fit_zipf_exponent(np.array([4.0]), default=0.9) == 0.9
        # Flat head: nothing to regress.
        assert fit_zipf_exponent(np.array([3.0, 3.0, 3.0]), default=1.1) == 1.1

    def test_clipped_to_bounds(self):
        # A near-delta window would fit a huge exponent; it is clipped.
        assert fit_zipf_exponent(np.array([1e12, 1.0])) <= 4.0

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValidationError):
            fit_zipf_exponent(np.ones((2, 2)))
        with pytest.raises(ValidationError):
            fit_zipf_exponent(np.array([1.0, -2.0]))


class TestZipfWeightForecast:
    def test_normalised_and_rank_aligned(self):
        counts = np.array([5.0, 1.0, 9.0, 0.0])
        w = zipf_weight_forecast(counts, exponent=1.2)
        assert w.sum() == pytest.approx(1.0)
        # Weight order follows observed count order.
        assert np.argmax(w) == 2
        assert np.argmin(w) == 3

    def test_uses_public_zipf_shape(self):
        counts = np.array([9.0, 5.0, 1.0])
        np.testing.assert_allclose(
            zipf_weight_forecast(counts, exponent=1.5), zipf_weights(3, 1.5)
        )

    def test_all_zero_forecasts_uniform(self):
        np.testing.assert_allclose(
            zipf_weight_forecast(np.zeros(4)), np.full(4, 0.25)
        )

    def test_ties_broken_by_index(self):
        w = zipf_weight_forecast(np.array([2.0, 2.0, 1.0]), exponent=1.0)
        assert w[0] > w[1] > w[2]

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValidationError):
            zipf_weight_forecast(np.empty(0))
        with pytest.raises(ValidationError):
            zipf_weight_forecast(np.array([-1.0, 2.0]))


class TestRegionLabels:
    def test_two_tier_falls_back_to_per_node(self, small_topology):
        labels = region_labels(small_topology)
        assert set(labels) == {s.node_id for s in small_topology.nodes}
        assert labels[0] == "n0"
        # Per-node fallback: every node is its own region.
        assert len(set(labels.values())) == len(labels)


class TestTraceWindowCounts:
    def test_counts_partition_trace(self):
        trace = generate_usage_trace(
            TraceConfig(num_users=100, num_apps=16, days=6), spawn_rng(2, "t")
        )
        counts = trace_window_counts(trace, 86400.0, 16)
        assert counts.shape[1] == 16
        assert counts.sum() == len(trace)
        # Daily windows: the diurnal generator touches every day.
        assert counts.shape[0] == 6

    def test_window_rows_match_time_slices(self):
        trace = generate_usage_trace(
            TraceConfig(num_users=60, num_apps=8, days=4), spawn_rng(4, "t")
        )
        counts = trace_window_counts(trace, 86400.0, 8)
        for w in range(counts.shape[0]):
            in_window = (trace.timestamp_s >= w * 86400.0) & (
                trace.timestamp_s < (w + 1) * 86400.0
            )
            np.testing.assert_array_equal(
                counts[w], np.bincount(trace.app[in_window], minlength=8)
            )

    def test_bad_window_rejected(self):
        trace = generate_usage_trace(
            TraceConfig(num_users=5, num_apps=4, days=2), spawn_rng(5, "t")
        )
        with pytest.raises(ValidationError):
            trace_window_counts(trace, 0.0)


class TestDemandForecaster:
    def test_roster_validation(self):
        with pytest.raises(ValidationError):
            DemandForecaster((), 4)
        with pytest.raises(ValidationError):
            DemandForecaster(("a", "a"), 4)
        with pytest.raises(ValidationError):
            DemandForecaster(("a",), 0)

    def test_observe_counts_and_windows(self):
        f = DemandForecaster(("a", "b"), 3, ForecastConfig(bucket=4, num_buckets=2))
        for _ in range(10):
            f.observe("a", 0)
        assert f.observed == 10
        # Window holds 2 closed buckets (8) + partial current (2).
        assert f.window_observed == 10
        for _ in range(4):
            f.observe("b", 1)
        # Oldest bucket rolled out: 2 closed × 4 + partial 2.
        assert f.observed == 14
        assert f.window_observed == 10

    def test_unknown_region_ignored(self):
        f = DemandForecaster(("a",), 2)
        f.observe("nowhere", 0)
        assert f.observed == 0

    def test_bad_dataset_index_rejected(self):
        f = DemandForecaster(("a",), 2)
        with pytest.raises(ValidationError):
            f.observe("a", 2)

    def test_empty_forecast_is_zero(self):
        f = DemandForecaster(("a", "b"), 3)
        np.testing.assert_array_equal(f.forecast(), np.zeros((2, 3)))

    def test_ewma_forecast_tracks_shift(self):
        cfg = ForecastConfig(bucket=8, num_buckets=4, alpha=0.6)
        f = DemandForecaster(("a",), 2, cfg)
        for _ in range(16):
            f.observe("a", 0)
        for _ in range(16):
            f.observe("a", 1)
        pred = f.forecast()
        # Demand moved from dataset 0 to 1; the forecast must follow.
        assert pred[0, 1] > pred[0, 0]

    def test_zipf_estimator_preserves_region_totals(self):
        ewma_cfg = ForecastConfig(bucket=8, num_buckets=4, estimator="ewma")
        zipf_cfg = ForecastConfig(bucket=8, num_buckets=4, estimator="zipf")
        fe = DemandForecaster(("a", "b"), 4, ewma_cfg)
        fz = DemandForecaster(("a", "b"), 4, zipf_cfg)
        rng = spawn_rng(9, "demand")
        for _ in range(64):
            r = "a" if rng.random() < 0.7 else "b"
            d = int(rng.choice(4, p=zipf_weights(4, 1.2)))
            fe.observe(r, d)
            fz.observe(r, d)
        pe, pz = fe.forecast(), fz.forecast()
        # Same mass per region, redistributed along the Zipf shape.
        np.testing.assert_allclose(pz.sum(axis=1), pe.sum(axis=1))
        for row in pz:
            if row.sum() > 0:
                assert np.all(np.sort(row)[::-1][:2] > 0)

    def test_forecast_deterministic(self):
        def build():
            f = DemandForecaster(("a", "b"), 3, ForecastConfig(bucket=4))
            for i in range(23):
                f.observe("a" if i % 3 else "b", i % 3)
            return f.forecast()

        np.testing.assert_array_equal(build(), build())
