"""Tests for the paper parameter set."""

import pytest

from repro.util.validation import ValidationError
from repro.workload.params import PaperDefaults


class TestDefaults:
    def test_paper_ranges(self):
        p = PaperDefaults()
        assert p.num_datasets == (5, 20)
        assert p.num_queries == (10, 100)
        assert p.dataset_volume_gb == (1.0, 6.0)
        assert p.compute_rate == (0.75, 1.25)
        assert p.datasets_per_query == (1, 7)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PaperDefaults().max_replicas = 5

    def test_inverted_range_rejected(self):
        with pytest.raises(ValidationError):
            PaperDefaults(num_queries=(100, 10))

    def test_selectivity_capped_at_one(self):
        with pytest.raises(ValidationError):
            PaperDefaults(selectivity=(0.5, 1.2))


class TestSweepHelpers:
    def test_with_max_datasets_per_query(self):
        p = PaperDefaults().with_max_datasets_per_query(3)
        assert p.datasets_per_query == (1, 3)

    def test_with_f_below_low_clamps(self):
        p = PaperDefaults(datasets_per_query=(2, 7)).with_max_datasets_per_query(1)
        assert p.datasets_per_query == (1, 1)

    def test_single_dataset(self):
        assert PaperDefaults().single_dataset().datasets_per_query == (1, 1)

    def test_with_max_replicas(self):
        assert PaperDefaults().with_max_replicas(7).max_replicas == 7

    def test_with_num_queries_scalar(self):
        assert PaperDefaults().with_num_queries(40).num_queries == (40, 40)

    def test_with_num_queries_range(self):
        assert PaperDefaults().with_num_queries(10, 30).num_queries == (10, 30)

    def test_with_num_datasets(self):
        assert PaperDefaults().with_num_datasets(8).num_datasets == (8, 8)

    def test_helpers_do_not_mutate_original(self):
        p = PaperDefaults()
        p.with_max_replicas(7)
        assert p.max_replicas == 3
