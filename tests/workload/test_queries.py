"""Tests for query and whole-workload generation."""

import pytest

from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.datasets import generate_datasets
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_queries, generate_workload


@pytest.fixture(scope="module")
def datasets(paper_topology):
    return generate_datasets(paper_topology, spawn_rng(0, "ds"), count=15)


class TestGenerateQueries:
    def test_count_in_paper_range(self, paper_topology, datasets):
        for seed in range(5):
            queries = generate_queries(
                paper_topology, datasets, spawn_rng(seed, "q")
            )
            assert 10 <= len(queries) <= 100

    def test_dense_ids(self, paper_topology, datasets):
        queries = generate_queries(
            paper_topology, datasets, spawn_rng(1, "q"), count=20
        )
        assert [q.query_id for q in queries] == list(range(20))

    def test_demanded_within_collection(self, paper_topology, datasets):
        queries = generate_queries(
            paper_topology, datasets, spawn_rng(2, "q"), count=50
        )
        for q in queries:
            assert all(d in datasets for d in q.demanded)
            assert len(set(q.demanded)) == len(q.demanded)

    def test_f_range_respected(self, paper_topology, datasets):
        params = PaperDefaults().with_max_datasets_per_query(3)
        queries = generate_queries(
            paper_topology, datasets, spawn_rng(3, "q"), params, count=60
        )
        assert all(1 <= q.num_datasets <= 3 for q in queries)

    def test_compute_rate_in_range(self, paper_topology, datasets):
        queries = generate_queries(
            paper_topology, datasets, spawn_rng(4, "q"), count=60
        )
        assert all(0.75 <= q.compute_rate <= 1.25 for q in queries)

    def test_deadline_scales_with_largest_dataset(self, paper_topology, datasets):
        params = PaperDefaults()
        queries = generate_queries(
            paper_topology, datasets, spawn_rng(5, "q"), params, count=80
        )
        low, high = params.deadline_s_per_gb
        for q in queries:
            pivot = max(datasets[d].volume_gb for d in q.demanded)
            assert low * pivot <= q.deadline_s <= high * pivot

    def test_homes_are_placement_nodes(self, paper_topology, datasets):
        queries = generate_queries(
            paper_topology, datasets, spawn_rng(6, "q"), count=60
        )
        placement = set(paper_topology.placement_nodes)
        assert all(q.home_node in placement for q in queries)

    def test_homes_biased_to_cloudlets(self, paper_topology, datasets):
        queries = generate_queries(
            paper_topology, datasets, spawn_rng(7, "q"), count=400
        )
        cl = set(paper_topology.cloudlets)
        share = sum(1 for q in queries if q.home_node in cl) / len(queries)
        assert 0.7 <= share <= 0.9  # around cloudlet_home_fraction = 0.8

    def test_empty_datasets_rejected(self, paper_topology):
        with pytest.raises(ValidationError):
            generate_queries(paper_topology, {}, spawn_rng(8, "q"))

    def test_f_clamped_to_collection_size(self, paper_topology):
        datasets = generate_datasets(paper_topology, spawn_rng(9, "d"), count=3)
        queries = generate_queries(
            paper_topology, datasets, spawn_rng(9, "q"), count=30
        )
        assert all(q.num_datasets <= 3 for q in queries)


class TestGenerateWorkload:
    def test_builds_valid_instance(self, paper_topology):
        instance = generate_workload(paper_topology, spawn_rng(10, "wl"))
        assert instance.num_queries >= 10
        assert instance.num_datasets >= 5
        assert instance.max_replicas == PaperDefaults().max_replicas

    def test_deterministic(self, paper_topology):
        i1 = generate_workload(paper_topology, spawn_rng(11, "wl"))
        i2 = generate_workload(paper_topology, spawn_rng(11, "wl"))
        assert i1.num_queries == i2.num_queries
        assert [q.deadline_s for q in i1.queries] == [
            q.deadline_s for q in i2.queries
        ]

    def test_explicit_sizes(self, paper_topology):
        instance = generate_workload(
            paper_topology, spawn_rng(12, "wl"), num_datasets=7, num_queries=33
        )
        assert instance.num_datasets == 7
        assert instance.num_queries == 33
