"""Tests for the logical analytics query plans."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.queryplan import (
    AggregateOp,
    FilterOp,
    QueryPlan,
    estimated_selectivity,
    execute_distributed,
    execute_plan,
)
from repro.workload.trace import TraceConfig, generate_usage_trace, split_trace_by_time


@pytest.fixture(scope="module")
def trace():
    return generate_usage_trace(
        TraceConfig(num_users=150, num_apps=40, days=15), spawn_rng(0, "qp")
    )


@pytest.fixture(scope="module")
def segments(trace, paper_topology):
    _, segs = split_trace_by_time(trace, 6, paper_topology, spawn_rng(1, "qp"))
    return segs


class TestValidation:
    def test_empty_windows_rejected(self):
        with pytest.raises(ValidationError):
            QueryPlan(windows=())

    def test_duplicate_windows_rejected(self):
        with pytest.raises(ValidationError):
            QueryPlan(windows=(0, 0))

    def test_bad_group_by_rejected(self):
        with pytest.raises(ValidationError):
            AggregateOp(group_by="nope")

    def test_bad_hour_range_rejected(self):
        with pytest.raises(ValidationError):
            FilterOp(hour_range=(25, 3))


class TestExecution:
    def test_count_by_app_matches_numpy(self, trace, segments):
        plan = QueryPlan(windows=(0, 1), aggregate=AggregateOp("app", "count", 64))
        result = execute_plan(plan, trace, segments)
        idx = np.arange(segments[0][0], segments[1][1])
        expected = np.bincount(trace.app[idx], minlength=64)[:64]
        assert np.array_equal(result, expected)

    def test_filter_by_app(self, trace, segments):
        app = int(trace.app[0])
        plan = QueryPlan(
            windows=tuple(range(6)),
            filters=(FilterOp(app=app),),
            aggregate=AggregateOp("app", "count", 64),
        )
        result = execute_plan(plan, trace, segments)
        assert result[app] == (trace.app == app).sum()
        assert result.sum() == result[app]

    def test_hour_filter_wraps_midnight(self, trace, segments):
        plan = QueryPlan(
            windows=tuple(range(6)),
            filters=(FilterOp(hour_range=(22, 2)),),
            aggregate=AggregateOp("hour", "count"),
        )
        result = execute_plan(plan, trace, segments)
        active = {h for h in range(24) if result[h] > 0}
        assert active <= {22, 23, 0, 1}

    def test_duration_measure(self, trace, segments):
        plan = QueryPlan(
            windows=(2,), aggregate=AggregateOp("app", "duration", 64)
        )
        result = execute_plan(plan, trace, segments)
        a, b = segments[2]
        assert result.sum() == pytest.approx(trace.duration_s[a:b].sum())

    def test_conjunctive_filters(self, trace, segments):
        user = int(trace.user[0])
        app = int(trace.app[0])
        plan = QueryPlan(
            windows=tuple(range(6)),
            filters=(FilterOp(user=user), FilterOp(app=app)),
            aggregate=AggregateOp("app", "count", 64),
        )
        result = execute_plan(plan, trace, segments)
        expected = int(((trace.user == user) & (trace.app == app)).sum())
        assert result.sum() == expected


class TestDistributedExactness:
    """The load-bearing property: replica evaluation is exact."""

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.data(),
        group_by=st.sampled_from(["app", "hour", "day"]),
        measure=st.sampled_from(["count", "duration", "bytes"]),
    )
    def test_partials_merge_to_central_answer(
        self, trace, segments, data, group_by, measure
    ):
        n = len(segments)
        windows = tuple(
            sorted(
                data.draw(
                    st.sets(st.integers(0, n - 1), min_size=1, max_size=n)
                )
            )
        )
        filters = []
        if data.draw(st.booleans()):
            filters.append(FilterOp(app=data.draw(st.integers(0, 39))))
        if data.draw(st.booleans()):
            a = data.draw(st.integers(0, 23))
            b = data.draw(st.integers(0, 24))
            filters.append(FilterOp(hour_range=(a, b)))
        plan = QueryPlan(
            windows=windows,
            filters=tuple(filters),
            aggregate=AggregateOp(group_by, measure, 64),
        )
        central = execute_plan(plan, trace, segments)
        merged, partials = execute_distributed(plan, trace, segments)
        assert len(partials) == len(windows)
        assert np.allclose(merged, central)

    def test_partials_are_per_window(self, trace, segments):
        plan = QueryPlan(windows=(0, 3), aggregate=AggregateOp("app", "count", 64))
        _, partials = execute_distributed(plan, trace, segments)
        a, b = segments[0]
        assert partials[0].sum() == b - a


class TestSelectivity:
    def test_in_unit_interval(self, trace, segments):
        plan = QueryPlan(windows=tuple(range(6)))
        alphas = estimated_selectivity(plan, trace, segments)
        assert set(alphas) == set(range(6))
        assert all(0.0 < a <= 1.0 for a in alphas.values())

    def test_floor_applies(self, trace, segments):
        plan = QueryPlan(windows=(0,))
        alphas = estimated_selectivity(plan, trace, segments, floor=0.5)
        assert alphas[0] >= 0.5

    def test_aggregates_are_tiny(self, trace, segments):
        """Dense-vector partials are far smaller than raw windows."""
        plan = QueryPlan(windows=(0,), aggregate=AggregateOp("hour", "count"))
        alphas = estimated_selectivity(plan, trace, segments, floor=1e-9)
        assert alphas[0] < 0.01

    def test_bad_floor_rejected(self, trace, segments):
        with pytest.raises(ValidationError):
            estimated_selectivity(
                QueryPlan(windows=(0,)), trace, segments, floor=0.0
            )
