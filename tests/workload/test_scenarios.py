"""Tests for the pre-canned workload scenarios."""

import pytest

from repro.core import evaluate_solution, make_algorithm, verify_solution
from repro.workload.scenarios import (
    iot_telemetry_scenario,
    media_analytics_scenario,
    smart_city_scenario,
)

ALL_SCENARIOS = [
    smart_city_scenario,
    iot_telemetry_scenario,
    media_analytics_scenario,
]


@pytest.mark.parametrize("factory", ALL_SCENARIOS)
class TestScenarioShape:
    def test_builds_valid_instance(self, factory):
        scenario = factory(seed=1)
        assert scenario.instance.num_queries > 0
        assert scenario.instance.num_datasets > 0

    def test_tags_cover_all_queries(self, factory):
        scenario = factory(seed=1)
        assert set(scenario.tags) == set(range(scenario.instance.num_queries))

    def test_deterministic(self, factory):
        s1, s2 = factory(seed=4), factory(seed=4)
        assert [q.deadline_s for q in s1.instance.queries] == [
            q.deadline_s for q in s2.instance.queries
        ]
        assert s1.tags == s2.tags

    def test_seed_changes_workload(self, factory):
        s1, s2 = factory(seed=1), factory(seed=2)
        assert [q.deadline_s for q in s1.instance.queries] != [
            q.deadline_s for q in s2.instance.queries
        ]

    def test_solvable_and_verified(self, factory):
        scenario = factory(seed=1)
        solution = make_algorithm("appro-g").solve(scenario.instance)
        verify_solution(scenario.instance, solution)

    def test_queries_of(self, factory):
        scenario = factory(seed=1)
        total = sum(len(scenario.queries_of(t)) for t in set(scenario.tags.values()))
        assert total == scenario.instance.num_queries


class TestScenarioCharacter:
    def test_smart_city_tiers(self):
        scenario = smart_city_scenario(seed=3, num_queries=200)
        assert set(scenario.tags.values()) == {"alert", "dashboard", "planning"}
        # Alert deadlines are per-GB tighter than planning deadlines.
        inst = scenario.instance
        def per_gb(q_id):
            q = inst.query(q_id)
            pivot = max(inst.dataset(d).volume_gb for d in q.demanded)
            return q.deadline_s / pivot
        alerts = [per_gb(q) for q in scenario.queries_of("alert")]
        plans = [per_gb(q) for q in scenario.queries_of("planning")]
        assert max(alerts) < min(plans)

    def test_iot_datasets_small_and_many(self):
        scenario = iot_telemetry_scenario(seed=3)
        volumes = [d.volume_gb for d in scenario.instance.datasets.values()]
        assert len(volumes) >= 20
        assert max(volumes) <= 2.0

    def test_media_datasets_large_and_cloud_origin(self):
        scenario = media_analytics_scenario(seed=3)
        inst = scenario.instance
        dcs = set(inst.topology.data_centers)
        for d in inst.datasets.values():
            assert d.volume_gb >= 8.0
            assert d.origin_node in dcs

    def test_appro_beats_greedy_across_scenarios(self):
        for factory in ALL_SCENARIOS:
            scenario = factory(seed=5)
            appro = evaluate_solution(
                scenario.instance,
                make_algorithm("appro-g").solve(scenario.instance),
            ).admitted_volume_gb
            greedy = evaluate_solution(
                scenario.instance,
                make_algorithm("greedy-g").solve(scenario.instance),
            ).admitted_volume_gb
            assert appro >= greedy
