"""Tests for instance profiling."""

import pytest

from repro.workload.summary import profile_instance, render_profile


@pytest.fixture(scope="module")
def profile(paper_instance):
    return profile_instance(paper_instance)


class TestProfile:
    def test_dimensions(self, paper_instance, profile):
        assert profile.num_queries == paper_instance.num_queries
        assert profile.num_datasets == paper_instance.num_datasets
        assert profile.num_placement_nodes == paper_instance.num_placement_nodes

    def test_demand_matches_instance(self, paper_instance, profile):
        assert profile.total_demand_gb == pytest.approx(
            paper_instance.total_demanded_volume()
        )

    def test_capacities_split_by_tier(self, paper_instance, profile):
        topo = paper_instance.topology
        assert profile.cloudlet_capacity_ghz == pytest.approx(
            sum(topo.capacity(v) for v in topo.cloudlets)
        )
        assert profile.dc_capacity_ghz == pytest.approx(
            sum(topo.capacity(v) for v in topo.data_centers)
        )

    def test_fractions_in_unit_interval(self, profile):
        for value in (
            profile.dc_feasible_pair_fraction,
            profile.unservable_pair_fraction,
            profile.unservable_query_fraction,
        ):
            assert 0.0 <= value <= 1.0

    def test_feasible_count_bounded(self, profile):
        assert 0.0 <= profile.mean_feasible_nodes_per_pair <= (
            profile.num_placement_nodes
        )

    def test_default_regime_characteristics(self, profile):
        """The calibrated regime: tight DC feasibility, real compute
        pressure (this is what EXPERIMENTS.md's calibration section
        claims)."""
        assert profile.dc_feasible_pair_fraction < 0.6
        assert profile.compute_pressure > 0.5

    def test_compute_pressure_formula(self, profile):
        assert profile.compute_pressure == pytest.approx(
            profile.total_compute_demand_ghz / profile.cloudlet_capacity_ghz
        )


class TestRender:
    def test_render_mentions_key_numbers(self, profile):
        text = render_profile(profile)
        assert "instance profile" in text
        assert f"{profile.num_queries} queries" in text
        assert "compute pressure" in text
        assert "DC feasibility" in text
