"""Tests for the synthetic mobile-app usage trace."""

import numpy as np
import pytest

from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.trace import (
    TraceConfig,
    UsageTrace,
    generate_usage_trace,
    split_trace_by_time,
    zipf_weights,
)


@pytest.fixture(scope="module")
def trace():
    return generate_usage_trace(
        TraceConfig(num_users=300, num_apps=50, days=30), spawn_rng(0, "t")
    )


class TestGenerateUsageTrace:
    def test_sorted_by_time(self, trace):
        assert np.all(np.diff(trace.timestamp_s) >= 0)

    def test_columns_aligned(self, trace):
        n = len(trace)
        assert len(trace.user) == n
        assert len(trace.app) == n
        assert len(trace.duration_s) == n
        assert len(trace.nbytes) == n

    def test_expected_event_count(self, trace):
        # 300 users × 30 days × mean 2.25 events/user/day ≈ 20k.
        assert 10_000 < trace.num_events < 35_000

    def test_apps_within_range(self, trace):
        assert trace.app.min() >= 0
        assert trace.app.max() < 50

    def test_zipf_popularity(self, trace):
        counts = np.bincount(trace.app, minlength=50)
        # Rank-1 app clearly dominates a tail app.
        assert counts[0] > 5 * counts[30]

    def test_timestamps_within_horizon(self, trace):
        assert trace.timestamp_s.min() >= 0
        assert trace.timestamp_s.max() < 30 * 86400.0

    def test_diurnal_evening_peak(self, trace):
        hours = ((trace.timestamp_s % 86400.0) // 3600.0).astype(int)
        by_hour = np.bincount(hours, minlength=24)
        assert by_hour[21] > 2 * by_hour[3]

    def test_columns_immutable(self, trace):
        with pytest.raises(ValueError):
            trace.app[0] = 1

    def test_deterministic(self):
        cfg = TraceConfig(num_users=50, num_apps=10, days=5)
        t1 = generate_usage_trace(cfg, spawn_rng(1, "t"))
        t2 = generate_usage_trace(cfg, spawn_rng(1, "t"))
        assert np.array_equal(t1.timestamp_s, t2.timestamp_s)
        assert np.array_equal(t1.app, t2.app)

    def test_slice(self, trace):
        sub = trace.slice(10, 20)
        assert len(sub) == 10
        assert np.array_equal(sub.app, trace.app[10:20])

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValidationError):
            UsageTrace(
                np.zeros(3, dtype=np.int64),
                np.zeros(2, dtype=np.int64),
                np.zeros(3),
                np.zeros(3),
                np.zeros(3, dtype=np.int64),
            )


class TestSplitTraceByTime:
    def test_segments_partition_trace(self, trace, paper_topology):
        datasets, segments = split_trace_by_time(
            trace, 10, paper_topology, spawn_rng(2, "s")
        )
        assert len(datasets) == 10
        assert segments[0][0] == 0
        assert segments[-1][1] == len(trace)
        for (a1, b1), (a2, b2) in zip(segments, segments[1:]):
            assert b1 == a2
            assert a1 < b1

    def test_volumes_in_paper_range(self, trace, paper_topology):
        datasets, _ = split_trace_by_time(
            trace, 8, paper_topology, spawn_rng(3, "s")
        )
        for ds in datasets.values():
            assert 1.0 <= ds.volume_gb <= 6.0

    def test_origins_valid(self, trace, paper_topology):
        datasets, _ = split_trace_by_time(
            trace, 8, paper_topology, spawn_rng(4, "s")
        )
        placement = set(paper_topology.placement_nodes)
        assert all(ds.origin_node in placement for ds in datasets.values())

    def test_too_many_datasets_rejected(self, paper_topology):
        tiny = generate_usage_trace(
            TraceConfig(num_users=1, num_apps=2, days=1), spawn_rng(5, "t")
        )
        with pytest.raises(ValidationError):
            split_trace_by_time(tiny, len(tiny) + 1, paper_topology, spawn_rng(5, "s"))


def _raw_generator_columns(config: TraceConfig, rng):
    """Replay ``generate_usage_trace``'s draws *without* the final sort.

    This reconstructs the user-major column order the generator produces
    internally — the order a pre-fix ``generate_usage_trace`` handed to
    downstream index-range consumers.  Draw sequence mirrors the
    generator exactly, so the same rng seed yields the same events.
    """
    rates = rng.uniform(*config.events_per_user_per_day, size=config.num_users)
    counts = rng.poisson(rates * config.days)
    total = int(counts.sum())
    np.repeat(np.arange(config.num_users, dtype=np.int64), counts)
    rng.choice(
        config.num_apps,
        size=total,
        p=zipf_weights(config.num_apps, config.zipf_exponent),
    )
    day = rng.integers(0, config.days, size=total)
    return day


class TestTraceTimeOrdering:
    """Regression suite for the time-ordered trace fix.

    ``split_trace_by_time`` (and the forecast window counters) slice the
    trace by *index range*, assuming index order == time order.  The
    generator draws events user-major, so without the explicit sort each
    "time segment" was a mixture of every user's whole horizon.
    """

    CONFIG = TraceConfig(num_users=120, num_apps=20, days=12)

    def test_segment_time_ranges_disjoint_and_monotone(self, paper_topology):
        trace = generate_usage_trace(self.CONFIG, spawn_rng(11, "t"))
        _, segments = split_trace_by_time(
            trace, 6, paper_topology, spawn_rng(11, "s")
        )
        ranges = [
            (trace.timestamp_s[a:b].min(), trace.timestamp_s[a:b].max())
            for a, b in segments
        ]
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert lo1 <= hi1
            assert lo2 <= hi2
            # Consecutive segments must not overlap in time: each covers
            # a later window than its predecessor.
            assert hi1 <= lo2

    def test_prefix_draw_order_mixed_days_across_segments(self):
        # Pinned-seed demonstration of the pre-fix failure: in the raw
        # user-major draw order, equal-population index segments each
        # span (nearly) the full horizon, so "by creation time" datasets
        # mixed events from every day.
        day = _raw_generator_columns(self.CONFIG, spawn_rng(11, "t"))
        bounds = np.linspace(0, len(day), 7).astype(int)
        spans = [
            day[a:b].max() - day[a:b].min()
            for a, b in zip(bounds, bounds[1:])
        ]
        # Every unsorted segment spans most of the 12-day horizon...
        assert min(spans) >= self.CONFIG.days - 2
        # ...whereas the sorted trace's segments each cover ~2 days.
        trace = generate_usage_trace(self.CONFIG, spawn_rng(11, "t"))
        days_sorted = (trace.timestamp_s // 86400.0).astype(int)
        sorted_spans = [
            days_sorted[a:b].max() - days_sorted[a:b].min()
            for a, b in zip(bounds, bounds[1:])
        ]
        assert max(sorted_spans) <= 3

    def test_generator_output_matches_constructor_sort(self):
        # The explicit sort in the generator is the identity w.r.t. the
        # constructor's own stable sort: emitted traces are byte-equal
        # to re-sorting the columns again.
        trace = generate_usage_trace(self.CONFIG, spawn_rng(7, "t"))
        resorted = UsageTrace(
            trace.user, trace.app, trace.timestamp_s,
            trace.duration_s, trace.nbytes,
        )
        np.testing.assert_array_equal(trace.user, resorted.user)
        np.testing.assert_array_equal(trace.app, resorted.app)
        np.testing.assert_array_equal(trace.timestamp_s, resorted.timestamp_s)


class TestZipfWeights:
    def test_normalised(self):
        for n, s in ((1, 0.5), (7, 1.2), (100, 2.0)):
            w = zipf_weights(n, s)
            assert w.shape == (n,)
            assert w.sum() == pytest.approx(1.0)

    def test_strictly_decreasing(self):
        w = zipf_weights(50, 1.2)
        assert np.all(np.diff(w) < 0)
        assert np.all(w > 0)

    def test_flat_when_exponent_tiny(self):
        w = zipf_weights(10, 1e-9)
        assert w.max() - w.min() < 1e-8

    def test_non_positive_inputs_rejected(self):
        with pytest.raises(ValidationError):
            zipf_weights(0, 1.2)
        with pytest.raises(ValidationError):
            zipf_weights(-3, 1.2)
        with pytest.raises(ValidationError):
            zipf_weights(10, 0.0)
        with pytest.raises(ValidationError):
            zipf_weights(10, -1.0)
