"""Tests for the synthetic mobile-app usage trace."""

import numpy as np
import pytest

from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError
from repro.workload.trace import (
    TraceConfig,
    UsageTrace,
    generate_usage_trace,
    split_trace_by_time,
)


@pytest.fixture(scope="module")
def trace():
    return generate_usage_trace(
        TraceConfig(num_users=300, num_apps=50, days=30), spawn_rng(0, "t")
    )


class TestGenerateUsageTrace:
    def test_sorted_by_time(self, trace):
        assert np.all(np.diff(trace.timestamp_s) >= 0)

    def test_columns_aligned(self, trace):
        n = len(trace)
        assert len(trace.user) == n
        assert len(trace.app) == n
        assert len(trace.duration_s) == n
        assert len(trace.nbytes) == n

    def test_expected_event_count(self, trace):
        # 300 users × 30 days × mean 2.25 events/user/day ≈ 20k.
        assert 10_000 < trace.num_events < 35_000

    def test_apps_within_range(self, trace):
        assert trace.app.min() >= 0
        assert trace.app.max() < 50

    def test_zipf_popularity(self, trace):
        counts = np.bincount(trace.app, minlength=50)
        # Rank-1 app clearly dominates a tail app.
        assert counts[0] > 5 * counts[30]

    def test_timestamps_within_horizon(self, trace):
        assert trace.timestamp_s.min() >= 0
        assert trace.timestamp_s.max() < 30 * 86400.0

    def test_diurnal_evening_peak(self, trace):
        hours = ((trace.timestamp_s % 86400.0) // 3600.0).astype(int)
        by_hour = np.bincount(hours, minlength=24)
        assert by_hour[21] > 2 * by_hour[3]

    def test_columns_immutable(self, trace):
        with pytest.raises(ValueError):
            trace.app[0] = 1

    def test_deterministic(self):
        cfg = TraceConfig(num_users=50, num_apps=10, days=5)
        t1 = generate_usage_trace(cfg, spawn_rng(1, "t"))
        t2 = generate_usage_trace(cfg, spawn_rng(1, "t"))
        assert np.array_equal(t1.timestamp_s, t2.timestamp_s)
        assert np.array_equal(t1.app, t2.app)

    def test_slice(self, trace):
        sub = trace.slice(10, 20)
        assert len(sub) == 10
        assert np.array_equal(sub.app, trace.app[10:20])

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValidationError):
            UsageTrace(
                np.zeros(3, dtype=np.int64),
                np.zeros(2, dtype=np.int64),
                np.zeros(3),
                np.zeros(3),
                np.zeros(3, dtype=np.int64),
            )


class TestSplitTraceByTime:
    def test_segments_partition_trace(self, trace, paper_topology):
        datasets, segments = split_trace_by_time(
            trace, 10, paper_topology, spawn_rng(2, "s")
        )
        assert len(datasets) == 10
        assert segments[0][0] == 0
        assert segments[-1][1] == len(trace)
        for (a1, b1), (a2, b2) in zip(segments, segments[1:]):
            assert b1 == a2
            assert a1 < b1

    def test_volumes_in_paper_range(self, trace, paper_topology):
        datasets, _ = split_trace_by_time(
            trace, 8, paper_topology, spawn_rng(3, "s")
        )
        for ds in datasets.values():
            assert 1.0 <= ds.volume_gb <= 6.0

    def test_origins_valid(self, trace, paper_topology):
        datasets, _ = split_trace_by_time(
            trace, 8, paper_topology, spawn_rng(4, "s")
        )
        placement = set(paper_topology.placement_nodes)
        assert all(ds.origin_node in placement for ds in datasets.values())

    def test_too_many_datasets_rejected(self, paper_topology):
        tiny = generate_usage_trace(
            TraceConfig(num_users=1, num_apps=2, days=1), spawn_rng(5, "t")
        )
        with pytest.raises(ValidationError):
            split_trace_by_time(tiny, len(tiny) + 1, paper_topology, spawn_rng(5, "s"))
